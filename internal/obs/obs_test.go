package obs

import (
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter series from many
// goroutines, re-resolving the series through the registry on every
// increment to exercise the registration path under -race as well.
func TestCounterConcurrent(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("hits_total", L("kind", "test")).Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits_total", L("kind", "test")).Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	t.Parallel()
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5 (negative adds ignored)", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	g := reg.Gauge("level")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced adds", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge = %d, want 42", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// and checks count, sum and bucket totals afterwards.
func TestHistogramConcurrent(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	h := reg.Histogram("lat_ns")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed + int64(i)%97)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	var bucketTotal int64
	for _, n := range h.snapshotBuckets() {
		bucketTotal += n
	}
	if bucketTotal != h.Count() {
		t.Errorf("bucket total = %d, count = %d; want equal", bucketTotal, h.Count())
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -7} {
		h.Observe(v)
	}
	// Expected bucket layout: bits.Len64 of 0,1,2,3,4,1000,0(clamped).
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 10: 1}
	got := h.snapshotBuckets()
	for i, n := range got {
		if n != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, n, want[i])
		}
	}
	if h.Sum() != 0+1+2+3+4+1000+0 {
		t.Errorf("sum = %d, want 1010", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	t.Parallel()
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
	// 100 observations of 1000: every quantile lands in bucket 10
	// (512..1023).
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 512 || got > 1023 {
			t.Errorf("p%v = %v, want within bucket [512, 1023]", q*100, got)
		}
	}
	// Add 900 tiny observations; p50 must drop to the tiny bucket
	// while p99 stays high.
	for i := 0; i < 900; i++ {
		h.Observe(1)
	}
	if p50 := h.Quantile(0.5); p50 > 1 {
		t.Errorf("p50 = %v, want ≤ 1 after 900 tiny observations", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512 {
		t.Errorf("p99 = %v, want ≥ 512", p99)
	}
}

func TestBucketUpperBound(t *testing.T) {
	t.Parallel()
	cases := map[int]int64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 63: 1<<63 - 1, 64: 1<<63 - 1}
	for i, want := range cases {
		if got := BucketUpperBound(i); got != want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestNilSafety checks every hot-path method is a no-op on nil
// receivers, so instrumented code can skip "is obs enabled?" branches.
func TestNilSafety(t *testing.T) {
	t.Parallel()
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should read 0")
	}
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z").Observe(1)
	if err := reg.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry export: %v", err)
	}
	var tr *Tracer
	tr.Phase("p")()
	tr.Add("p", time.Second)
	tr.Report(nil)
	if tr.Phases() != nil {
		t.Error("nil tracer should have no phases")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("registering the same series as two kinds should panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("m")
	reg.Histogram("m")
}

func TestTracerPhases(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	tr := NewTracer(reg)
	done := tr.Phase("alpha")
	time.Sleep(time.Millisecond)
	done()
	tr.Add("beta", 3*time.Millisecond)
	tr.Add("beta", 2*time.Millisecond)
	ps := tr.Phases()
	if len(ps) != 2 {
		t.Fatalf("phases = %d, want 2", len(ps))
	}
	if ps[0].Name != "alpha" || ps[0].Duration <= 0 || ps[0].Count != 1 {
		t.Errorf("alpha = %+v, want positive single span", ps[0])
	}
	if ps[1].Name != "beta" || ps[1].Duration != 5*time.Millisecond || ps[1].Count != 2 {
		t.Errorf("beta = %+v, want 5ms over 2 intervals", ps[1])
	}
	// Phase durations must also land in the registry histogram.
	if n := reg.Histogram("phase_duration_ns", L("phase", "beta")).Count(); n != 2 {
		t.Errorf("phase_duration_ns{phase=beta} count = %d, want 2", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	t.Parallel()
	tr := NewTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add("shared", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ps := tr.Phases()
	if len(ps) != 1 || ps[0].Count != 4000 || ps[0].Duration != 4000*time.Microsecond {
		t.Errorf("phases = %+v, want one shared phase with 4000 × 1µs", ps)
	}
}
