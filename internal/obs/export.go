package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE header per metric
// family, counters and gauges as single samples, histograms as
// cumulative _bucket{le=...} samples plus _sum and _count. Buckets are
// emitted up to the highest non-empty one, then +Inf. Output is
// deterministic (sorted by name, then labels).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastFamily := ""
	for _, s := range r.sortedSeries() {
		if s.name != lastFamily {
			lastFamily = s.name
			if _, err := fmt.Fprintf(w, "# TYPE %s %v\n", s.name, s.kind); err != nil {
				return err
			}
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", seriesKey(s.name, s.labels), s.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", seriesKey(s.name, s.labels), s.gauge.Value())
		case kindHistogram:
			err = writePromHistogram(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, s *series) error {
	buckets := s.histogram.snapshotBuckets()
	top := -1
	for i, n := range buckets {
		if n > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += buckets[i]
		le := fmt.Sprintf("%d", BucketUpperBound(i))
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(s.name+"_bucket", withLE(s.labels, le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(s.name+"_bucket", withLE(s.labels, "+Inf")), s.histogram.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(s.name+"_sum", s.labels), s.histogram.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesKey(s.name+"_count", s.labels), s.histogram.Count())
	return err
}

func withLE(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, L("le", le))
}

// JSONBucket is one non-empty histogram bucket in the JSON export: a
// non-cumulative count of the values in [LowerBound, UpperBound], both
// edges inclusive. Empty buckets are elided, so both edges are
// recorded explicitly — consumers can re-derive quantiles (the same
// interpolation Histogram.Quantile uses) without knowing the
// registry's log-scale bucket layout.
type JSONBucket struct {
	LowerBound int64 `json:"ge"`
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
	// ExemplarValue and ExemplarTraceID link the bucket to one traced
	// observation (the latest): the observed value and its trace ID as
	// 16 hex digits, resolvable via GET /trace/{id}. Absent when no
	// traced observation landed in the bucket.
	ExemplarValue   *int64 `json:"exemplar_value,omitempty"`
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
}

// JSONMetric is one series in the JSON export. Value is set for
// counters and gauges; Count/Sum/Buckets/P50/P99 for histograms.
type JSONMetric struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *int64            `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *int64            `json:"sum,omitempty"`
	P50     *float64          `json:"p50,omitempty"`
	P99     *float64          `json:"p99,omitempty"`
	Buckets []JSONBucket      `json:"buckets,omitempty"`
}

// Snapshot returns all series as export-ready JSONMetric values, in
// the same deterministic order as WritePrometheus.
func (r *Registry) Snapshot() []JSONMetric {
	if r == nil {
		return nil
	}
	var out []JSONMetric
	for _, s := range r.sortedSeries() {
		m := JSONMetric{Name: s.name, Kind: s.kind.String()}
		if len(s.labels) > 0 {
			m.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch s.kind {
		case kindCounter:
			v := s.counter.Value()
			m.Value = &v
		case kindGauge:
			v := s.gauge.Value()
			m.Value = &v
		case kindHistogram:
			c, sum := s.histogram.Count(), s.histogram.Sum()
			p50, p99 := s.histogram.Quantile(0.50), s.histogram.Quantile(0.99)
			m.Count, m.Sum, m.P50, m.P99 = &c, &sum, &p50, &p99
			for i, n := range s.histogram.snapshotBuckets() {
				if n > 0 {
					b := JSONBucket{LowerBound: BucketLowerBound(i), UpperBound: BucketUpperBound(i), Count: n}
					if ex := s.histogram.BucketExemplar(i); ex != nil {
						v := ex.Value
						b.ExemplarValue = &v
						b.ExemplarTraceID = fmt.Sprintf("%016x", ex.TraceID)
					}
					m.Buckets = append(m.Buckets, b)
				}
			}
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON renders the registry as an indented JSON array of
// JSONMetric objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Dump writes the registry to the named destination in Prometheus text
// format: "-" means the given writer (a CLI's stdout), anything else a
// file path. Paths ending in .json select the JSON exporter instead.
// An empty path is a no-op.
func (r *Registry) Dump(path string, stdout io.Writer) error {
	switch {
	case path == "":
		return nil
	case path == "-":
		return r.WritePrometheus(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
