// Golden fixture: the WritesWidened soundness guard. The sweeper's
// write keys are computed, so its write set is only a may-write ⊤
// over-approximation; if the §6 vulnerability refinement were applied
// to the materialised ⊤ set it would intersect every other write set
// and wrongly defuse the anti-dependencies below. The diagnostic pins
// that the refinement is disabled for widened writers.
package main

import (
	"sian/internal/engine"
	"sian/internal/model"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	keys := []string{"x", "y"}
	sweeper := db.Session("sweeper")
	writer := db.Session("writer")
	_ = sweeper.TransactNamed("sweep", func(tx *engine.Tx) error { // want "write-skew: dangerous cycle sweep -RW\*-> put -RW\*-> sweep .*not robust against SI"
		if _, err := tx.Read("x"); err != nil {
			return err
		}
		if _, err := tx.Read("y"); err != nil {
			return err
		}
		for _, k := range keys {
			if err := tx.Write(model.Obj(k), 0); err != nil {
				return err
			}
		}
		return nil
	})
	_ = writer.TransactNamed("put", func(tx *engine.Tx) error {
		if _, err := tx.Read("x"); err != nil {
			return err
		}
		if _, err := tx.Read("y"); err != nil {
			return err
		}
		return tx.Write("y", 1)
	})
}
