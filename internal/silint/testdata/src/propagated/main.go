// Golden fixture: constant propagation. The materialised-conflict
// application is robust exactly when every key resolves to its named
// object — if any of the propagation chains below fell back to ⊤ the
// widened write sets would make the analysis report a write skew, so
// the absence of diagnostics pins the propagation.
package main

import (
	"sian/internal/engine"
	"sian/internal/model"
)

const prefix = "acct"

// sharedKey reaches the reads through a package-level single-assignment
// variable.
var sharedKey = "total"

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	alice := db.Session("alice")
	bob := db.Session("bob")
	// Constant concatenation folds at compile time.
	first := prefix + "1"
	second := prefix + "2"
	_ = alice.TransactNamed("withdraw1", func(tx *engine.Tx) error {
		v1, err := tx.Read(model.Obj(first))
		if err != nil {
			return err
		}
		if _, err := tx.Read(model.Obj(second)); err != nil {
			return err
		}
		t, err := tx.Read(model.Obj(sharedKey))
		if err != nil {
			return err
		}
		if err := tx.Write(model.Obj(first), v1-100); err != nil {
			return err
		}
		return tx.Write(model.Obj(sharedKey), t-100)
	})
	_ = bob.TransactNamed("withdraw2", func(tx *engine.Tx) error {
		if _, err := tx.Read(model.Obj(first)); err != nil {
			return err
		}
		v2, err := tx.Read(model.Obj(second))
		if err != nil {
			return err
		}
		t, err := tx.Read(model.Obj(sharedKey))
		if err != nil {
			return err
		}
		if err := tx.Write(model.Obj(second), v2-100); err != nil {
			return err
		}
		return tx.Write(model.Obj(sharedKey), t-100)
	})
	// A constant key inside a loop stays precise (set semantics): the
	// span is marked for in-session duplication but must not widen.
	refiller := db.Session("refiller")
	for i := 0; i < 3; i++ {
		_ = refiller.TransactNamed("refill", func(tx *engine.Tx) error {
			v, err := tx.Read("reserve")
			if err != nil {
				return err
			}
			return tx.Write("reserve", v+1)
		})
	}
}
