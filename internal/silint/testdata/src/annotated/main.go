// Golden fixture: the annotation escape hatch. The shared conflict key
// is computed at run time, which would widen the write sets to ⊤ and
// (soundly but imprecisely) flag the app; the silint:obj annotations
// assert the key, keeping the sets exact — and the materialised
// conflict then proves the app robust, so any diagnostic here means
// the annotation was ignored.
package main

import (
	"sian/internal/engine"
	"sian/internal/model"
)

func conflictKey(n int) string {
	if n > 0 {
		return "total"
	}
	return "total"
}

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	alice := db.Session("alice")
	bob := db.Session("bob")
	key := conflictKey(1)
	_ = alice.TransactNamed("withdraw1", func(tx *engine.Tx) error {
		v1, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		if _, err := tx.Read("acct2"); err != nil {
			return err
		}
		// silint:obj=total
		t, err := tx.Read(model.Obj(key))
		if err != nil {
			return err
		}
		if err := tx.Write("acct1", v1-100); err != nil {
			return err
		}
		return tx.Write(model.Obj(key), t-100) // silint:obj=total
	})
	_ = bob.TransactNamed("withdraw2", func(tx *engine.Tx) error {
		if _, err := tx.Read("acct1"); err != nil {
			return err
		}
		v2, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		t, err := tx.Read(model.Obj(key)) // silint:obj=total
		if err != nil {
			return err
		}
		if err := tx.Write("acct2", v2-100); err != nil {
			return err
		}
		return tx.Write(model.Obj(key), t-100) // silint:obj=total
	})
}
