// Golden fixture: the Figure 2(d) write skew with the repair advisor's
// suggested promotion applied — withdraw2 promotes its read of acct1 to
// a write (§6 materialised conflict), so the two withdrawals conflict
// on acct1 and the RW cycle of Theorem 19 is defused. This fixture must
// produce no diagnostics.
package main

import (
	"sian/internal/engine"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	alice := db.Session("alice")
	bob := db.Session("bob")
	_ = alice.TransactNamed("withdraw1", func(tx *engine.Tx) error {
		v1, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			return tx.Write("acct1", v1-100)
		}
		return nil
	})
	_ = bob.TransactNamed("withdraw2", func(tx *engine.Tx) error {
		if err := tx.Promote("acct1"); err != nil {
			return err
		}
		v1, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			return tx.Write("acct2", v2-100)
		}
		return nil
	})
}
