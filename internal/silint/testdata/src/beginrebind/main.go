// Golden fixture: one variable rebound across two Begin spans, with
// the handle escaping while the first span is current. The escape
// could refer to either bound handle, so both spans must widen to ⊤.
// The trailing bare Begin discards its results and soundly keeps empty
// sets.
package main

import (
	"sian/internal/engine"
)

var hold *engine.ManualTx

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	carol := db.Session("carol")
	t, err := carol.Begin("first")
	if err != nil {
		panic(err)
	}
	hold = t // the handle escapes while the first span is current
	t, err = carol.Begin("second")
	if err != nil {
		panic(err)
	}
	v, err := t.Read("x")
	if err != nil {
		panic(err)
	}
	if err := t.Write("x", v+1); err != nil {
		panic(err)
	}
	if err := t.Commit(); err != nil {
		panic(err)
	}
	carol.Begin("noop") // both results discarded: the span keeps empty sets
}
