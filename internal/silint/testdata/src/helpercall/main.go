// Golden fixture: interprocedural extraction. Transaction bodies are
// factored into helper functions that receive the handle — the
// `func credit(tx *engine.Tx, acct string)` pattern — and the
// extractor composes their summaries instead of widening to ⊤:
// constant arguments are substituted at each call site, helpers
// calling helpers compose, and a helper that promotes contributes to
// both sets. The two sessions write-skew on the shared total, so the
// package is still (correctly) flagged; the extraction test pins that
// every set is exact, with zero widenings.
package main

import (
	"sian/internal/engine"
	"sian/internal/model"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	alice := db.Session("alice")
	bob := db.Session("bob")
	_ = alice.TransactNamed("withdraw1", func(tx *engine.Tx) error { // want "write-skew: dangerous cycle withdraw1.*not robust against SI"
		return withdraw(tx, "acct1")
	})
	_ = bob.TransactNamed("withdraw2", func(tx *engine.Tx) error {
		return withdraw(tx, "acct2")
	})
	carol := db.Session("carol")
	_ = carol.TransactNamed("audit", func(tx *engine.Tx) error {
		return snapshotTotal(tx)
	})
}

// withdraw debits one account after checking the combined balance —
// the helper reads both accounts via checkBalance and writes only the
// account named by its caller.
func withdraw(tx *engine.Tx, acct string) error {
	total, err := checkBalance(tx)
	if err != nil {
		return err
	}
	if total < 100 {
		return nil
	}
	v, err := tx.Read(model.Obj(acct))
	if err != nil {
		return err
	}
	return tx.Write(model.Obj(acct), v-100)
}

// checkBalance composes one level deeper: a helper called by a helper.
func checkBalance(tx *engine.Tx) (model.Value, error) {
	a, err := tx.Read("acct1")
	if err != nil {
		return 0, err
	}
	b, err := tx.Read("acct2")
	if err != nil {
		return 0, err
	}
	return a + b, nil
}

// snapshotTotal promotes inside a helper: the promoted object lands in
// both the read and the write set of the calling transaction.
func snapshotTotal(tx *engine.Tx) error {
	return tx.Promote("total")
}
