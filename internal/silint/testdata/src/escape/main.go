// Golden fixture: handler functions and handle escape. The first
// session passes a same-package top-level function to Transact, whose
// body is extracted precisely; the second stores its transaction
// handle in a package-level variable — a genuinely dynamic flow no
// helper summary covers — which widens both of its sets to ⊤.
package main

import (
	"sian/internal/engine"
)

// stash retains a handle beyond the span the extractor can see.
var stash *engine.Tx

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	alice := db.Session("alice")
	bob := db.Session("bob")
	_ = alice.Transact(logic) // want "write-skew: dangerous cycle tx@main\.go.*not robust against SI"
	_ = bob.TransactNamed("leak", func(tx *engine.Tx) error {
		stash = tx
		return stash.Write("hidden", 1)
	})
}

func logic(tx *engine.Tx) error {
	if _, err := tx.Read("x"); err != nil {
		return err
	}
	if _, err := tx.Read("y"); err != nil {
		return err
	}
	return tx.Write("y", 1)
}
