// Golden fixture: manual transactions whose handles are bound with a
// var declaration (ValueSpec) rather than := — extraction must track
// their reads and writes exactly like assignment-bound handles.
package main

import (
	"sian/internal/engine"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	alice := db.Session("alice")
	bob := db.Session("bob")
	var t1, err1 = alice.Begin("withdraw1") // want "write-skew: dangerous cycle withdraw1 .*not robust against SI"
	if err1 != nil {
		panic(err1)
	}
	var t2, err2 = bob.Begin("withdraw2")
	if err2 != nil {
		panic(err2)
	}
	v1, err := t1.Read("acct1")
	if err != nil {
		panic(err)
	}
	if _, err := t1.Read("acct2"); err != nil {
		panic(err)
	}
	if _, err := t2.Read("acct1"); err != nil {
		panic(err)
	}
	v2, err := t2.Read("acct2")
	if err != nil {
		panic(err)
	}
	if err := t1.Write("acct1", v1-100); err != nil {
		panic(err)
	}
	if err := t2.Write("acct2", v2-100); err != nil {
		panic(err)
	}
	if err := t1.Commit(); err != nil {
		panic(err)
	}
	if err := t2.Commit(); err != nil {
		panic(err)
	}
}
