// Golden fixture: loop widening. The audit transaction reads a
// computed key in a range loop, so its read set widens to ⊤; the write
// skew against the poster is only found through that widening.
package main

import (
	"sian/internal/engine"
	"sian/internal/model"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	keys := []string{"a", "b"}
	auditor := db.Session("auditor")
	poster := db.Session("poster")
	_ = auditor.TransactNamed("audit", func(tx *engine.Tx) error { // want "write-skew: dangerous cycle audit -RW\*-> post -RW\*-> audit .*not robust against SI"
		for _, k := range keys {
			if _, err := tx.Read(model.Obj(k)); err != nil {
				return err
			}
		}
		return tx.Write("auditlog", 1)
	})
	_ = poster.TransactNamed("post", func(tx *engine.Tx) error {
		if _, err := tx.Read("auditlog"); err != nil {
			return err
		}
		return tx.Write("b", 2)
	})
}
