// Golden fixture: Figure 5 as code. The transfer session chops the
// logical transfer into debit and credit transactions; the lookupAll
// session reads both accounts atomically, so the chopping is incorrect
// under SI (Corollary 18) — the lookup can observe a half-completed
// transfer.
package main

import (
	"sian/internal/engine"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	teller := db.Session("teller")
	reporter := db.Session("reporter")
	_ = teller.TransactNamed("debit", func(tx *engine.Tx) error { // want "incorrect-chopping: critical cycle .*not a correct chopping under SI .*Corollary 18"
		v, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		return tx.Write("acct1", v-100)
	})
	_ = teller.TransactNamed("credit", func(tx *engine.Tx) error {
		v, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		return tx.Write("acct2", v+100)
	})
	_ = reporter.TransactNamed("lookupAll", func(tx *engine.Tx) error {
		if _, err := tx.Read("acct1"); err != nil {
			return err
		}
		_, err := tx.Read("acct2")
		return err
	})
}
