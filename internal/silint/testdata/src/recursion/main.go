// Golden fixture: the recursion cutoff. A helper that forwards the
// handle to itself cannot be summarised bottom-up; the extractor
// soundly widens the transaction to ⊤ instead of diverging. The
// sibling precise transaction pins that the widening is local to the
// recursive span.
package main

import (
	"sian/internal/engine"
	"sian/internal/model"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	s := db.Session("s")
	_ = s.TransactNamed("drain", func(tx *engine.Tx) error {
		return drain(tx, 3)
	})
	_ = s.TransactNamed("poke", func(tx *engine.Tx) error {
		return tx.Write("cursor", 0)
	})
}

func drain(tx *engine.Tx, n int) error {
	if n == 0 {
		return nil
	}
	if err := tx.Write("cursor", model.Value(n)); err != nil {
		return err
	}
	return drain(tx, n-1)
}
