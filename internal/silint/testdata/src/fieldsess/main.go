// Golden fixture: sessions reached through struct fields. A field's
// types.Var is one object shared by every instance of the struct, so
// the two workers below must not merge into a single session — merging
// would fabricate session order between their transactions and hide
// the write skew.
package main

import (
	"sian/internal/engine"
)

type worker struct {
	sess *engine.Session
}

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	a := worker{sess: db.Session("alice")}
	b := worker{sess: db.Session("bob")}
	_ = a.sess.TransactNamed("withdraw1", func(tx *engine.Tx) error { // want "write-skew: dangerous cycle withdraw1 .*not robust against SI"
		v1, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			return tx.Write("acct1", v1-100)
		}
		return nil
	})
	_ = b.sess.TransactNamed("withdraw2", func(tx *engine.Tx) error {
		v1, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			return tx.Write("acct2", v2-100)
		}
		return nil
	})
}
