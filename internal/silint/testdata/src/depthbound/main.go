// Golden fixture: the helper-depth bound. Summary composition stops
// at maxHelperDepth nested helper calls: the six-deep chain is
// extracted exactly, the seven-deep chain widens to ⊤ (soundly)
// rather than recursing further.
package main

import (
	"sian/internal/engine"
)

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	s := db.Session("s")
	_ = s.TransactNamed("shallow", func(tx *engine.Tx) error {
		return h1(tx)
	})
	_ = s.TransactNamed("deep", func(tx *engine.Tx) error {
		return d1(tx)
	})
}

func h1(tx *engine.Tx) error { return h2(tx) }
func h2(tx *engine.Tx) error { return h3(tx) }
func h3(tx *engine.Tx) error { return h4(tx) }
func h4(tx *engine.Tx) error { return h5(tx) }
func h5(tx *engine.Tx) error { return h6(tx) }
func h6(tx *engine.Tx) error { return tx.Write("leaf", 1) }

func d1(tx *engine.Tx) error { return d2(tx) }
func d2(tx *engine.Tx) error { return d3(tx) }
func d3(tx *engine.Tx) error { return d4(tx) }
func d4(tx *engine.Tx) error { return d5(tx) }
func d5(tx *engine.Tx) error { return d6(tx) }
func d6(tx *engine.Tx) error { return d7(tx) }
func d7(tx *engine.Tx) error { return tx.Write("leaf", 1) }
