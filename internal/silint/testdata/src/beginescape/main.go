// Golden fixture: a Begin whose handle is handed straight to the
// caller. The reads and writes performed through the returned handle
// are invisible at the Begin site, so the span must widen to ⊤ — empty
// sets would claim the span touches nothing.
package main

import (
	"sian/internal/engine"
)

func startLeak(s *engine.Session) (*engine.ManualTx, error) {
	return s.Begin("leaked")
}

func main() {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	s := db.Session("s")
	t, err := startLeak(s)
	if err != nil {
		panic(err)
	}
	if err := t.Write("x", 1); err != nil {
		panic(err)
	}
	if err := t.Commit(); err != nil {
		panic(err)
	}
}
