package silint

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
)

// TestRepairAdvisorEndToEnd closes the loop on the repair advisor: the
// write-skew fixture's first-ranked suggested fix is applied textually
// to a scratch copy, the promoted program is re-verified statically
// (Theorem 19 now passes), and the same promoted program is replayed
// dynamically through the SI engine — the materialised conflict forces
// one transaction to abort, and the committed history certifies as
// serialisable.
func TestRepairAdvisorEndToEnd(t *testing.T) {
	// Scratch package inside the module (t.TempDir lives outside the
	// module root, where sian/... imports would not resolve). It sits
	// under testdata/ but not testdata/src/, so the golden walk and the
	// package build both ignore it.
	src, err := os.ReadFile("testdata/src/writeskew/main.go")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("testdata", "fixapply-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	target := filepath.Join(dir, "main.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}
	absTarget, err := filepath.Abs(target)
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{Models: []depgraph.Model{depgraph.SI}}
	report, err := Analyze([]string{dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Packages) != 1 || len(report.Packages[0].Diagnostics) != 1 {
		t.Fatalf("scratch copy: report = %+v", report)
	}
	d := report.Packages[0].Diagnostics[0]
	var rank1 []SuggestedFix
	for _, f := range d.Fixes {
		if f.Rank == 1 {
			rank1 = append(rank1, f)
		}
	}
	if len(rank1) == 0 {
		t.Fatalf("no first-ranked fix among %+v", d.Fixes)
	}

	// Apply the first-ranked repair textually, back to front so earlier
	// offsets stay valid.
	var edits []TextEdit
	for _, f := range rank1 {
		for _, e := range f.Edits {
			if e.Filename != absTarget {
				t.Fatalf("edit targets %s, want %s", e.Filename, absTarget)
			}
			edits = append(edits, e)
		}
	}
	if len(edits) == 0 {
		t.Fatal("first-ranked fix carries no text edits")
	}
	data := src
	sort.Slice(edits, func(i, j int) bool { return edits[i].Offset > edits[j].Offset })
	for _, e := range edits {
		if e.Offset < 0 || e.End < e.Offset || e.End > len(data) {
			t.Fatalf("edit out of bounds: %+v", e)
		}
		data = append(data[:e.Offset], append([]byte(e.NewText), data[e.End:]...)...)
	}
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Static re-verification: the promoted program passes Theorem 19.
	report, err = Analyze([]string{dir}, opts)
	if err != nil {
		t.Fatalf("promoted copy does not type-check or analyze: %v", err)
	}
	if n := len(report.Packages[0].Diagnostics); n != 0 {
		t.Fatalf("promoted copy still has %d diagnostic(s): %+v", n, report.Packages[0].Diagnostics)
	}

	// Dynamic replay, driven by the fix metadata: which transaction
	// promotes which object.
	promoted := make(map[string]model.Obj)
	for _, f := range rank1 {
		for _, name := range f.Txs {
			promoted[strings.TrimSuffix(name, "@it2")] = model.Obj(f.Obj)
		}
	}
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"acct1": 60, "acct2": 60}); err != nil {
		t.Fatal(err)
	}
	body := func(tx *engine.ManualTx, name string, acct model.Obj) error {
		if obj, ok := promoted[name]; ok {
			if err := tx.Promote(obj); err != nil {
				return err
			}
		}
		v1, err := tx.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := tx.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			var v model.Value
			if acct == "acct1" {
				v = v1
			} else {
				v = v2
			}
			return tx.Write(acct, v-100)
		}
		return nil
	}
	t1, err := db.Session("alice").Begin("withdraw1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Session("bob").Begin("withdraw2")
	if err != nil {
		t.Fatal(err)
	}
	if err := body(t1, "withdraw1", "acct1"); err != nil {
		t.Fatal(err)
	}
	if err := body(t2, "withdraw2", "acct2"); err != nil {
		t.Fatal(err)
	}
	// The promotion materialises a write-write conflict between the two
	// overlapping withdrawals: first committer wins, the other aborts —
	// exactly the §6 remedy the static fix promised.
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, engine.ErrConflict) {
		t.Fatalf("second committer: err = %v, want ErrConflict", err)
	}
	// The standard response to ErrConflict: retry on a fresh snapshot.
	t3, err := db.Session("bob").Begin("withdraw2")
	if err != nil {
		t.Fatal(err)
	}
	if err := body(t3, "withdraw2", "acct2"); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatalf("retry failed: %v", err)
	}

	db.Flush()
	res, err := check.Certify(db.History(), depgraph.SER, check.Options{NoInit: true, PinInit: true, Budget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Member {
		t.Fatalf("promoted replay is not serialisable: %v", res.Explain)
	}
}
