// Package audit is a silint fixture exercising ⊤-widening: the sum
// below reads a caller-supplied account list in a loop, so the key is
// not statically resolvable and the read set widens to ⊤. On its own
// the package is still clean (a lone read-only session violates
// nothing), which also makes it a CI exit-0 target; the differential
// test checks the dynamic read set is a subset of the widened one.
package audit

import (
	"sian/internal/engine"
	"sian/internal/model"
)

// SumAll atomically reads every listed account and returns the total —
// the lookupAll of Figure 5, over a dynamic account set.
func SumAll(s *engine.Session, accounts []model.Obj) (model.Value, error) {
	var total model.Value
	err := s.TransactNamed("sumAll", func(tx *engine.Tx) error {
		total = 0
		for _, a := range accounts {
			v, err := tx.Read(a)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	})
	return total, err
}

// AuditNamed reads a caller-supplied account plus the ledger header;
// the caller guarantees the account is one of the two known ones and
// asserts it with the annotation escape hatch, so the set stays exact.
func AuditNamed(s *engine.Session, acct model.Obj) (model.Value, error) {
	var v model.Value
	err := s.TransactNamed("audit", func(tx *engine.Tx) error {
		var err error
		v, err = tx.Read(acct) // silint:obj=acct1,acct2
		return err
	})
	return v, err
}
