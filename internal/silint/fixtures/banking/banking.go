// Package banking is a silint end-to-end fixture: the §5 running
// example (Figure 6) written as real code against the engine API. The
// transfer is chopped into two small transactions and the lookups read
// single accounts, so the package is robust and a correct chopping —
// silint over this package must report nothing.
package banking

import (
	"sian/internal/engine"
	"sian/internal/model"
)

// The two accounts, as compile-time constants the analyser resolves.
const (
	Acct1 = "acct1"
	Acct2 = "acct2"
)

// TransferChopped moves amount from Acct1 to Acct2 as two small
// transactions: the chopping of Figure 4's transfer.
func TransferChopped(s *engine.Session, amount model.Value) error {
	if err := s.TransactNamed("debit", func(tx *engine.Tx) error {
		v, err := tx.Read(Acct1)
		if err != nil {
			return err
		}
		return tx.Write(Acct1, v-amount)
	}); err != nil {
		return err
	}
	return s.TransactNamed("credit", func(tx *engine.Tx) error {
		v, err := tx.Read(Acct2)
		if err != nil {
			return err
		}
		return tx.Write(Acct2, v+amount)
	})
}

// Lookup1 returns the balance of the first account. The key reaches
// the read through a propagated single-assignment local.
func Lookup1(s *engine.Session) (model.Value, error) {
	var v model.Value
	acct := Acct1
	err := s.TransactNamed("lookup1", func(tx *engine.Tx) error {
		var err error
		v, err = tx.Read(model.Obj(acct))
		return err
	})
	return v, err
}

// Lookup2 returns the balance of the second account.
func Lookup2(s *engine.Session) (model.Value, error) {
	var v model.Value
	err := s.TransactNamed("lookup2", func(tx *engine.Tx) error {
		var err error
		v, err = tx.Read(Acct2)
		return err
	})
	return v, err
}
