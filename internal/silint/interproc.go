package silint

import (
	"fmt"
	"go/ast"
	"go/types"

	"sian/internal/model"
)

// Interprocedural extraction: summary-based analysis of helper
// functions that receive a transaction handle.
//
// v1 widened a transaction to ⊤ the moment its handle was passed to
// any function — which made every realistically factored application
// (func credit(tx *engine.Tx, acct string) …) unanalyzable. v2 instead
// computes a bottom-up *summary* of each helper: the read and write
// keys it touches through the handle, expressed as resolved objects
// plus references to the helper's own parameters. At a call site the
// summary is instantiated by resolving the actual arguments with the
// caller's constant propagation. Helpers calling helpers compose the
// same way, bounded by maxHelperDepth; recursion, unresolvable
// callees, variadic handle positions, `go` statements and any other
// use of the handle (storing it, aliasing it, method values) still
// widen to ⊤ — the escape analysis of v1 remains the sound fallback.

// maxHelperDepth bounds summary composition: a chain of more than this
// many nested helper calls widens to ⊤ (soundly) instead of recursing
// further.
const maxHelperDepth = 6

// sumSet is an abstract object set relative to a helper's parameters:
// resolved named objects, parameter indices whose argument supplies
// the key, and a ⊤ flag for keys unresolvable even symbolically.
type sumSet struct {
	objs   map[model.Obj]bool
	params map[int]bool
	top    bool
}

func newSumSet() *sumSet {
	return &sumSet{objs: make(map[model.Obj]bool), params: make(map[int]bool)}
}

func (s *sumSet) add(objs []model.Obj, params []int, top bool) {
	for _, o := range objs {
		s.objs[o] = true
	}
	for _, p := range params {
		s.params[p] = true
	}
	if top {
		s.top = true
	}
}

// summary is the transaction-handle footprint of one helper function,
// relative to one handle parameter position.
type summary struct {
	fn     *types.Func
	txIdx  int
	reads  *sumSet
	writes *sumSet
	// widened records that the handle itself escapes inside the helper
	// (or a composition bound was hit): only ⊤ for both sets is sound.
	widened bool
	reason  string
}

// sumKey caches summaries per (function, handle-parameter) pair.
type sumKey struct {
	fn    *types.Func
	txIdx int
}

// flatParams returns the flat parameter objects of a declaration (one
// entry per declared name, nil for blank), plus whether the final
// parameter is variadic.
func (e *extractor) flatParams(fd *ast.FuncDecl) (objs []types.Object, variadic bool) {
	if fd.Type.Params == nil {
		return nil, false
	}
	fields := fd.Type.Params.List
	for fi, f := range fields {
		if _, ok := f.Type.(*ast.Ellipsis); ok && fi == len(fields)-1 {
			variadic = true
		}
		if len(f.Names) == 0 {
			objs = append(objs, nil) // unnamed parameter occupies one slot
			continue
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				objs = append(objs, nil)
				continue
			}
			objs = append(objs, e.pkg.Info.Defs[name])
		}
	}
	return objs, variadic
}

// helperTarget resolves a call to a summarisable same-package helper:
// the declared function and the flat index of the parameter receiving
// the handle argument at position argIdx. ok is false when the callee
// is not statically visible or the handle lands in a variadic slot.
func (e *extractor) helperTarget(call *ast.CallExpr, argIdx int) (fn *types.Func, fd *ast.FuncDecl, txIdx int, ok bool) {
	fd = e.funcDeclFor(call.Fun)
	if fd == nil {
		return nil, nil, 0, false
	}
	obj := e.pkg.Info.Defs[fd.Name]
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return nil, nil, 0, false
	}
	params, variadic := e.flatParams(fd)
	if variadic && argIdx >= len(params)-1 {
		return nil, nil, 0, false // handle spread into the variadic slot
	}
	if argIdx >= len(params) {
		return nil, nil, 0, false // f(g()) style multi-value call
	}
	return fn, fd, argIdx, true
}

// summarize computes (and caches) the summary of fd with respect to
// its txIdx-th parameter. depth counts helper-call nesting from the
// transaction body; beyond maxHelperDepth the result widens.
func (e *extractor) summarize(fn *types.Func, fd *ast.FuncDecl, txIdx, depth int) *summary {
	key := sumKey{fn, txIdx}
	if s, cached := e.summaries[key]; cached {
		return s
	}
	if e.summarizing[fn] {
		return &summary{fn: fn, txIdx: txIdx, widened: true,
			reason: fmt.Sprintf("helper %s is recursive", fn.Name())}
	}
	if depth > maxHelperDepth {
		return &summary{fn: fn, txIdx: txIdx, widened: true,
			reason: fmt.Sprintf("helper call depth exceeds %d at %s", maxHelperDepth, fn.Name())}
	}
	e.summarizing[fn] = true
	defer delete(e.summarizing, fn)

	s := &summary{fn: fn, txIdx: txIdx, reads: newSumSet(), writes: newSumSet()}
	params, _ := e.flatParams(fd)
	txObj := params[txIdx]
	if txObj == nil {
		// The handle binds to a blank/unnamed parameter: the helper
		// cannot touch it, so its contribution is empty.
		e.summaries[key] = s
		return s
	}
	paramIdx := make(map[types.Object]int, len(params))
	for i, p := range params {
		if p != nil {
			paramIdx[p] = i
		}
	}

	ok := make(map[*ast.Ident]bool)
	widen := func(reason string) {
		if !s.widened {
			s.widened = true
			s.reason = reason
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if id, isIdent := unparen(sel.X).(*ast.Ident); isIdent && e.pkg.Info.Uses[id] == txObj {
				switch sel.Sel.Name {
				case "Read":
					if len(call.Args) == 1 {
						s.reads.add(e.resolveSumExpr(call.Args[0], call, paramIdx))
						ok[id] = true
					}
				case "Write":
					if len(call.Args) == 2 {
						s.writes.add(e.resolveSumExpr(call.Args[0], call, paramIdx))
						ok[id] = true
					}
				case "Promote":
					if len(call.Args) == 1 {
						objs, ps, top := e.resolveSumExpr(call.Args[0], call, paramIdx)
						s.reads.add(objs, ps, top)
						s.writes.add(objs, ps, top)
						ok[id] = true
					}
				case "Commit", "Abort":
					ok[id] = true
				}
				return true
			}
		}
		// A nested helper call forwarding the handle composes
		// summaries; `go` hands the handle to concurrent code and must
		// escape.
		if e.goCalls[call] {
			return true
		}
		for ai, arg := range call.Args {
			id, isIdent := unparen(arg).(*ast.Ident)
			if !isIdent || e.pkg.Info.Uses[id] != txObj {
				continue
			}
			nfn, nfd, nIdx, resolvable := e.helperTarget(call, ai)
			if !resolvable {
				continue // second pass widens via the unmarked ident
			}
			ns := e.summarize(nfn, nfd, nIdx, depth+1)
			if ns.widened {
				widen(ns.reason)
				ok[id] = true
				continue
			}
			e.substitute(ns.reads, call, paramIdx, s.reads)
			e.substitute(ns.writes, call, paramIdx, s.writes)
			ok[id] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || ok[id] || e.pkg.Info.Uses[id] != txObj {
			return true
		}
		widen(fmt.Sprintf("transaction handle %s escapes helper %s (%s)", id.Name, fn.Name(), e.position(id.Pos())))
		return false
	})
	e.summaries[key] = s
	return s
}

// substitute maps a nested summary set through a nested call's
// arguments into the enclosing helper's parameter space.
func (e *extractor) substitute(nested *sumSet, call *ast.CallExpr, paramIdx map[types.Object]int, into *sumSet) {
	if nested.top {
		into.top = true
	}
	for o := range nested.objs {
		into.objs[o] = true
	}
	for p := range nested.params {
		if p >= len(call.Args) {
			into.top = true
			continue
		}
		objs, ps, top := e.resolveSumExpr(call.Args[p], call, paramIdx)
		into.add(objs, ps, top)
	}
}

// resolveSumExpr resolves a key expression inside a helper body: a
// silint:obj annotation or compile-time constant yields objects; a
// reference to one of the helper's own (never-reassigned) parameters
// yields a parameter index resolved later at the call site;
// single-assignment locals and conversions resolve recursively;
// everything else is ⊤.
func (e *extractor) resolveSumExpr(arg ast.Expr, call *ast.CallExpr, paramIdx map[types.Object]int) (objs []model.Obj, params []int, top bool) {
	if a, ok := e.annotationAt(call.Pos()); ok {
		return a, nil, false
	}
	return e.resolveSumRec(arg, paramIdx, make(map[types.Object]bool))
}

func (e *extractor) resolveSumRec(x ast.Expr, paramIdx map[types.Object]int, visited map[types.Object]bool) (objs []model.Obj, params []int, top bool) {
	x = unparen(x)
	if s := e.constString(x); s != "" {
		return []model.Obj{model.Obj(s)}, nil, false
	}
	switch v := x.(type) {
	case *ast.Ident:
		obj := e.pkg.Info.Uses[v]
		if obj == nil || visited[obj] {
			return nil, nil, true
		}
		if pi, isParam := paramIdx[obj]; isParam {
			if e.assigns[obj] == 0 && !e.addrTaken[obj] {
				return nil, []int{pi}, false
			}
			return nil, nil, true // reassigned parameter: value unknown
		}
		vr, isVar := obj.(*types.Var)
		if !isVar || e.assigns[vr] != 1 || e.addrTaken[vr] {
			return nil, nil, true
		}
		rhs, hasRHS := e.assignRHS[vr]
		if !hasRHS {
			return nil, nil, true
		}
		visited[obj] = true
		return e.resolveSumRec(rhs, paramIdx, visited)
	case *ast.CallExpr:
		if len(v.Args) == 1 {
			if tv, ok := e.pkg.Info.Types[v.Fun]; ok && tv.IsType() {
				return e.resolveSumRec(v.Args[0], paramIdx, visited)
			}
		}
	}
	return nil, nil, true
}

// applyHelperCall instantiates a helper summary at a top-level call
// site inside a transaction span: the handle bound to handleObj is
// passed to call as an argument. Reports whether the call was handled
// (so the handle use must not be treated as an escape).
func (e *extractor) applyHelperCall(call *ast.CallExpr, handleObj types.Object, tx *Tx) bool {
	if e.goCalls[call] {
		return false // the goroutine may outlive the span: escape
	}
	handled := false
	for ai, arg := range call.Args {
		id, isIdent := unparen(arg).(*ast.Ident)
		if !isIdent || e.pkg.Info.Uses[id] != handleObj {
			continue
		}
		fn, fd, txIdx, ok := e.helperTarget(call, ai)
		if !ok {
			return false
		}
		sum := e.summarize(fn, fd, txIdx, 1)
		e.applySummary(sum, call, tx)
		handled = true
	}
	return handled
}

// applySummary instantiates a computed summary at a concrete call
// site, resolving parameter references against the actual arguments
// with the caller's constant propagation.
func (e *extractor) applySummary(sum *summary, call *ast.CallExpr, tx *Tx) {
	if sum.widened {
		e.widen(tx, call.Pos(), sum.reason)
		return
	}
	instantiate := func(set *sumSet, target *ObjSet, what string) {
		if set.top {
			if !target.Top {
				target.Top = true
				e.widenings++
				e.note(call.Pos(), "helper %s %s a key that is not statically resolvable: widened to ⊤ (annotate with // silint:obj=<name> to assert the key)", sum.fn.Name(), what)
			}
		}
		for o := range set.objs {
			target.add([]model.Obj{o}, false)
		}
		for p := range set.params {
			if p >= len(call.Args) {
				target.add(nil, true)
				continue
			}
			objs, top := e.resolveExpr(call.Args[p], make(map[types.Object]bool))
			if top && !target.Top {
				e.widenings++
				e.note(call.Pos(), "argument %s of helper %s is not a resolvable constant: %s set widened to ⊤ (annotate with // silint:obj=<name> to assert the key)",
					exprText(call.Args[p]), sum.fn.Name(), what)
			}
			target.add(objs, top)
		}
	}
	instantiate(sum.reads, tx.Reads, "reads")
	instantiate(sum.writes, tx.Writes, "writes")
}
