package silint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package: the syntax trees plus
// the go/types objects the extractor resolves calls against.
type Package struct {
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files of the loader that produced the package.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the resolution maps (Types, Defs, Uses, Selections).
	Info *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal import paths are resolved
// against the module root found by walking up from Dir to go.mod, and
// everything else (the standard library) goes through go/importer's
// source importer. Loaded packages are cached, so analysing many
// packages of one module type-checks shared dependencies once.
type Loader struct {
	fset       *token.FileSet
	dir        string // absolute anchor for relative patterns
	moduleRoot string
	modulePath string
	std        types.ImporterFrom
	cache      map[string]*Package
	inProgress map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("silint: source importer unavailable")
	}
	return &Loader{
		fset:       fset,
		dir:        abs,
		moduleRoot: root,
		modulePath: path,
		std:        std,
		cache:      make(map[string]*Package),
		inProgress: make(map[string]bool),
	}, nil
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.Trim(strings.TrimSpace(rest), `"`), nil
				}
			}
			return "", "", fmt.Errorf("silint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("silint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the patterns to package directories and type-checks
// each. A pattern is a directory path, absolute or relative to the
// directory the loader was created for (Options.Dir), with an optional
// "/..." suffix that walks subdirectories (skipping testdata, vendor,
// and directories starting with "." or "_" — but an explicit pattern
// may point inside them).
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(l.dir, abs)
		}
		abs = filepath.Clean(abs)
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("silint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(abs)
			continue
		}
		err := filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, d := range dirs {
		path, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("silint: %s is outside module %s (%s)", dir, l.modulePath, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from source inside the module, everything else is delegated
// to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks one module-internal package (memoised).
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.inProgress[path] {
		return nil, fmt.Errorf("silint: import cycle through %s", path)
	}
	l.inProgress[path] = true
	defer delete(l.inProgress, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("silint: %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("silint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("silint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("silint: type-check %s: %w", path, err)
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.cache[path] = pkg
	return pkg, nil
}
