package silint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
)

// wantRE matches golden expectations: // want "regexp".
var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the testdata tree for // want comments, keyed by
// absolute file path and line.
func collectWants(t *testing.T, root string) map[string]map[int][]*want {
	t.Helper()
	wants := make(map[string]map[int][]*want)
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", p, i+1, m[1], err)
				}
				if wants[abs] == nil {
					wants[abs] = make(map[int][]*want)
				}
				wants[abs][i+1] = append(wants[abs][i+1], &want{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// analyzeTestdata runs one shared Analyze over every golden package
// (the loader caches type-checked dependencies across them).
func analyzeTestdata(t *testing.T) *Report {
	t.Helper()
	report, err := Analyze([]string{"testdata/src/..."}, Options{
		Models: []depgraph.Model{depgraph.SI},
	})
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func TestGoldenDiagnostics(t *testing.T) {
	report := analyzeTestdata(t)
	wants := collectWants(t, "testdata/src")
	if len(wants) == 0 {
		t.Fatal("no // want expectations found under testdata/src")
	}
	for _, pkg := range report.Packages {
		for _, d := range pkg.Diagnostics {
			matched := false
			for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
				if !w.matched && w.re.MatchString(d.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic at %s", d)
			}
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, w.re)
				}
			}
		}
	}
}

// findTx locates an extracted transaction by package import-path
// suffix and transaction name prefix.
func findTx(t *testing.T, report *Report, pkgSuffix, txPrefix string) *Tx {
	t.Helper()
	for _, pkg := range report.Packages {
		if !strings.HasSuffix(pkg.Path, pkgSuffix) {
			continue
		}
		for _, s := range pkg.Sessions {
			for _, tx := range s.Txs {
				if strings.HasPrefix(tx.Name, txPrefix) {
					return tx
				}
			}
		}
		t.Fatalf("package %s: no transaction named %s*", pkg.Path, txPrefix)
	}
	t.Fatalf("no package with suffix %s in report", pkgSuffix)
	return nil
}

func objs(xs ...model.Obj) []model.Obj { return xs }

func checkSet(t *testing.T, what string, s *ObjSet, top bool, named []model.Obj) {
	t.Helper()
	if s.Top != top {
		t.Errorf("%s: Top = %v, want %v", what, s.Top, top)
	}
	got := s.Objects()
	if len(got) != len(named) {
		t.Errorf("%s: objects = %v, want %v", what, got, named)
		return
	}
	for i := range got {
		if got[i] != named[i] {
			t.Errorf("%s: objects = %v, want %v", what, got, named)
			return
		}
	}
}

// TestGoldenExtraction pins the abstract sets themselves: robust
// fixtures produce no diagnostics, so precision there is asserted
// directly on the extracted transactions.
func TestGoldenExtraction(t *testing.T) {
	report := analyzeTestdata(t)

	w1 := findTx(t, report, "/propagated", "withdraw1")
	checkSet(t, "propagated/withdraw1 reads", w1.Reads, false, objs("acct1", "acct2", "total"))
	checkSet(t, "propagated/withdraw1 writes", w1.Writes, false, objs("acct1", "total"))

	refill := findTx(t, report, "/propagated", "refill")
	if !refill.InLoop {
		t.Error("propagated/refill: InLoop = false, want true")
	}
	checkSet(t, "propagated/refill reads", refill.Reads, false, objs("reserve"))
	checkSet(t, "propagated/refill writes", refill.Writes, false, objs("reserve"))

	a1 := findTx(t, report, "/annotated", "withdraw1")
	checkSet(t, "annotated/withdraw1 reads", a1.Reads, false, objs("acct1", "acct2", "total"))
	checkSet(t, "annotated/withdraw1 writes", a1.Writes, false, objs("acct1", "total"))

	audit := findTx(t, report, "/loops", "audit")
	checkSet(t, "loops/audit reads", audit.Reads, true, nil)
	checkSet(t, "loops/audit writes", audit.Writes, false, objs("auditlog"))

	sweep := findTx(t, report, "/widenwrites", "sweep")
	checkSet(t, "widenwrites/sweep reads", sweep.Reads, false, objs("x", "y"))
	checkSet(t, "widenwrites/sweep writes", sweep.Writes, true, nil)

	logic := findTx(t, report, "/escape", "tx@")
	checkSet(t, "escape/logic reads", logic.Reads, false, objs("x", "y"))
	checkSet(t, "escape/logic writes", logic.Writes, false, objs("y"))
	leak := findTx(t, report, "/escape", "leak")
	checkSet(t, "escape/leak reads", leak.Reads, true, nil)
	checkSet(t, "escape/leak writes", leak.Writes, true, nil)

	// Interprocedural fixtures: factored bodies extract exactly.
	hw1 := findTx(t, report, "/helpercall", "withdraw1")
	checkSet(t, "helpercall/withdraw1 reads", hw1.Reads, false, objs("acct1", "acct2"))
	checkSet(t, "helpercall/withdraw1 writes", hw1.Writes, false, objs("acct1"))
	hw2 := findTx(t, report, "/helpercall", "withdraw2")
	checkSet(t, "helpercall/withdraw2 reads", hw2.Reads, false, objs("acct1", "acct2"))
	checkSet(t, "helpercall/withdraw2 writes", hw2.Writes, false, objs("acct2"))
	haud := findTx(t, report, "/helpercall", "audit")
	checkSet(t, "helpercall/audit reads", haud.Reads, false, objs("total"))
	checkSet(t, "helpercall/audit writes", haud.Writes, false, objs("total"))

	drain := findTx(t, report, "/recursion", "drain")
	checkSet(t, "recursion/drain reads", drain.Reads, true, nil)
	checkSet(t, "recursion/drain writes", drain.Writes, true, nil)
	poke := findTx(t, report, "/recursion", "poke")
	checkSet(t, "recursion/poke reads", poke.Reads, false, nil)
	checkSet(t, "recursion/poke writes", poke.Writes, false, objs("cursor"))

	shallow := findTx(t, report, "/depthbound", "shallow")
	checkSet(t, "depthbound/shallow reads", shallow.Reads, false, nil)
	checkSet(t, "depthbound/shallow writes", shallow.Writes, false, objs("leaf"))
	deep := findTx(t, report, "/depthbound", "deep")
	checkSet(t, "depthbound/deep reads", deep.Reads, true, nil)
	checkSet(t, "depthbound/deep writes", deep.Writes, true, nil)

	// promofix is the write skew with the advisor's promotion applied:
	// the promoted read lands in both sets and the package is clean
	// (TestGoldenDiagnostics fails on any unexpected diagnostic there).
	pf2 := findTx(t, report, "/promofix", "withdraw2")
	checkSet(t, "promofix/withdraw2 reads", pf2.Reads, false, objs("acct1", "acct2"))
	checkSet(t, "promofix/withdraw2 writes", pf2.Writes, false, objs("acct1", "acct2"))

	manual := findTx(t, report, "/manualtx", "withdraw1")
	if manual.Kind != TxManual {
		t.Errorf("manualtx/withdraw1: Kind = %v, want TxManual", manual.Kind)
	}
	checkSet(t, "manualtx/withdraw1 reads", manual.Reads, false, objs("acct1", "acct2"))
	checkSet(t, "manualtx/withdraw1 writes", manual.Writes, false, objs("acct1"))

	bv := findTx(t, report, "/beginvar", "withdraw1")
	if bv.Kind != TxManual {
		t.Errorf("beginvar/withdraw1: Kind = %v, want TxManual", bv.Kind)
	}
	checkSet(t, "beginvar/withdraw1 reads", bv.Reads, false, objs("acct1", "acct2"))
	checkSet(t, "beginvar/withdraw1 writes", bv.Writes, false, objs("acct1"))

	leaked := findTx(t, report, "/beginescape", "leaked")
	if leaked.Kind != TxManual {
		t.Errorf("beginescape/leaked: Kind = %v, want TxManual", leaked.Kind)
	}
	checkSet(t, "beginescape/leaked reads", leaked.Reads, true, nil)
	checkSet(t, "beginescape/leaked writes", leaked.Writes, true, nil)

	first := findTx(t, report, "/beginrebind", "first")
	checkSet(t, "beginrebind/first reads", first.Reads, true, nil)
	checkSet(t, "beginrebind/first writes", first.Writes, true, nil)
	second := findTx(t, report, "/beginrebind", "second")
	checkSet(t, "beginrebind/second reads", second.Reads, true, objs("x"))
	checkSet(t, "beginrebind/second writes", second.Writes, true, objs("x"))
	noop := findTx(t, report, "/beginrebind", "noop")
	checkSet(t, "beginrebind/noop reads", noop.Reads, false, nil)
	checkSet(t, "beginrebind/noop writes", noop.Writes, false, nil)

	for _, pkg := range report.Packages {
		if strings.HasSuffix(pkg.Path, "/fieldsess") {
			if n := len(pkg.Sessions); n != 2 {
				t.Errorf("fieldsess: %d sessions, want 2 (field receivers must not merge across instances)", n)
			}
		}
	}
}
