// Package silint statically analyses Go code written against the
// engine's transaction API and applies the paper's static snapshot
// isolation criteria at compile time.
//
// The pipeline has three stages. Extraction type-checks the target
// packages (standard library only: go/parser + go/types) and finds
// every Session.Transact/TransactNamed closure and Begin…Commit span,
// computing a sound over-approximation of each transaction's read and
// write sets: constant and constant-propagated keys resolve to named
// objects, anything else widens to ⊤ (a silint:obj=<name> annotation
// comment can assert the key instead). Lowering maps the extracted
// sessions to the robustness.App and chopping.Program IRs, with ⊤
// materialised over the package's object universe. Checking runs the
// static robustness analyses of §6 (Theorems 19 and 22) and the
// chopping analysis of §5 and Appendix B (Corollary 18, Theorems 29
// and 31), reporting every violation as a diagnostic anchored at the
// offending Transact/Begin call site with a witness cycle.
package silint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"sian/internal/chopping"
	"sian/internal/depgraph"
	"sian/internal/obs"
	"sian/internal/robustness"
)

// Options configures an analysis run.
type Options struct {
	// Dir anchors module discovery and relative patterns (default ".").
	Dir string
	// Models selects the consistency models to check (default SI).
	// SI runs Theorem 19 robustness and Corollary 18 chopping; PSI runs
	// Theorem 22 robustness and Theorem 31 chopping; SER runs Theorem
	// 29 chopping only.
	Models []depgraph.Model
	// Registry receives silint_* counters when non-nil.
	Registry *obs.Registry
	// Loader is reused when non-nil (sharing its type-check cache);
	// otherwise a fresh loader is created for Dir.
	Loader *Loader
}

// Diagnostic is one reported violation, anchored at a transaction's
// call site.
type Diagnostic struct {
	// Pos is the Transact/TransactNamed/Begin call position of the
	// first transaction on the witness cycle.
	Pos token.Position `json:"pos"`
	// Package is the import path of the analysed package.
	Package string `json:"package"`
	// Tx is the label of the anchoring transaction.
	Tx string `json:"tx"`
	// Check identifies the analysis, e.g. "robustness-si".
	Check string `json:"check"`
	// Category classifies the anomaly, e.g. "write-skew".
	Category string `json:"category"`
	// Theorem cites the paper result the check implements.
	Theorem string `json:"theorem"`
	// Witness renders the dangerous or critical cycle.
	Witness string `json:"witness"`
	// Message is the full human-readable diagnostic (without the
	// position prefix).
	Message string `json:"message"`
	// Fixes are the repair advisor's verified suggestions: read→write
	// promotions whose application makes the failed check pass. Fixes
	// sharing a Rank form one alternative and must be applied together.
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// TextEdit is one byte-range replacement in a source file (End ==
// Offset for pure insertions).
type TextEdit struct {
	Filename string `json:"filename"`
	Offset   int    `json:"offset"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// SuggestedFix is one read→write promotion of a verified repair:
// promoting the read of Obj in the listed transaction instances
// materialises the racing conflict (§6), and the advisor has re-run
// the static check to confirm that the promoted application passes.
type SuggestedFix struct {
	// Obj is the object whose read is promoted.
	Obj string `json:"obj"`
	// Txs are the labels of the promoted transaction instances — the
	// loop-expanded copies of one source transaction promote together.
	Txs []string `json:"txs"`
	// Pos is the promoting transaction's call site.
	Pos token.Position `json:"pos"`
	// Rank groups the fixes of one repair alternative (1 is the
	// advisor's first choice); apply every fix of a rank together.
	Rank int `json:"rank"`
	// Message is the human-readable hint.
	Message string `json:"message"`
	// Edits insert a Promote stub into the transaction body when its
	// closure is statically visible (empty for manual Begin spans).
	Edits []TextEdit `json:"edits,omitempty"`
}

// String renders the diagnostic in file:line:col: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
}

// PackageReport is the analysis result for one package.
type PackageReport struct {
	// Path is the package import path.
	Path string
	// Sessions are the extracted sessions (exposed for differential
	// soundness testing against recorded engine histories).
	Sessions []*Session
	// Diagnostics are the violations found, in check order.
	Diagnostics []Diagnostic
	// Notes are informational messages: ⊤-widenings, session identity
	// losses, and similar precision events.
	Notes []string
	// Widenings counts the ⊤-widening events of the extraction — zero
	// means every set was extracted exactly.
	Widenings int
}

// Report is the result of one Analyze call.
type Report struct {
	Packages []*PackageReport
}

// Anomalies counts diagnostics across all packages.
func (r *Report) Anomalies() int {
	n := 0
	for _, p := range r.Packages {
		n += len(p.Diagnostics)
	}
	return n
}

// Diagnostics flattens all package diagnostics in package order.
func (r *Report) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for _, p := range r.Packages {
		out = append(out, p.Diagnostics...)
	}
	return out
}

// Analyze loads the packages matching the patterns and runs the
// selected static checks over every transaction session found.
func Analyze(patterns []string, opts Options) (*Report, error) {
	models := opts.Models
	if len(models) == 0 {
		models = []depgraph.Model{depgraph.SI}
	}
	for _, m := range models {
		switch m {
		case depgraph.SER, depgraph.SI, depgraph.PSI:
		default:
			return nil, fmt.Errorf("silint: unsupported model %v", m)
		}
	}
	l := opts.Loader
	if l == nil {
		dir := opts.Dir
		if dir == "" {
			dir = "."
		}
		var err error
		if l, err = NewLoader(dir); err != nil {
			return nil, err
		}
	}
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	report := &Report{}
	for _, pkg := range pkgs {
		pr, err := AnalyzePackage(pkg, models)
		if err != nil {
			return nil, err
		}
		report.Packages = append(report.Packages, pr)
		reg.Counter("silint_packages_total").Inc()
		reg.Counter("silint_sessions_total").Add(int64(len(pr.Sessions)))
		for _, s := range pr.Sessions {
			reg.Counter("silint_txs_total").Add(int64(len(s.Txs)))
		}
		reg.Counter("silint_widened_sets_total").Add(int64(pr.Widenings))
		reg.Counter("silint_notes_total").Add(int64(len(pr.Notes)))
		reg.Counter("silint_anomalies_total").Add(int64(len(pr.Diagnostics)))
	}
	return report, nil
}

// AnalyzePackage runs extraction and the selected checks over one
// loaded package. It is the entry point shared by Analyze and the
// go/analysis wrapper (internal/silint/analyzer): everything from
// extraction through the repair advisor happens here. Diagnostics are
// sorted by (position, check) for deterministic output.
func AnalyzePackage(pkg *Package, models []depgraph.Model) (*PackageReport, error) {
	if len(models) == 0 {
		models = []depgraph.Model{depgraph.SI}
	}
	e := newExtractor(pkg)
	e.extract()
	pr := &PackageReport{Path: pkg.ImportPath, Sessions: e.sessions, Notes: e.notes, Widenings: e.widenings}
	if err := diagnose(pkg, pr, models); err != nil {
		return nil, fmt.Errorf("silint: %s: %w", pkg.ImportPath, err)
	}
	sort.SliceStable(pr.Diagnostics, func(i, j int) bool {
		a, b := pr.Diagnostics[i], pr.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return pr, nil
}

// diagnose lowers a package's sessions and runs every selected check,
// appending diagnostics to the report.
func diagnose(pkg *Package, pr *PackageReport, models []depgraph.Model) error {
	expanded := expandSessions(pr.Sessions)
	if len(expanded) == 0 {
		return nil
	}
	universe := universeOf(expanded)
	app, flat, groups := lowerApp(expanded, universe)
	programs := lowerPrograms(expanded, universe)

	robust := func(check, category, theorem, against string, w *robustness.Witness, repairs []robustness.Repair) {
		anchor := flat[w.Steps[0].From]
		label := w.Labels[w.Steps[0].From]
		d := Diagnostic{
			Pos:      pkg.Fset.Position(anchor.Pos),
			Package:  pkg.ImportPath,
			Tx:       label,
			Check:    check,
			Category: category,
			Theorem:  theorem,
			Witness:  w.String(),
		}
		d.Message = fmt.Sprintf("%s: dangerous cycle %s — tx %s is not robust against %s (%s)",
			category, d.Witness, label, against, theorem)
		d.Fixes = lowerRepairs(pkg, groups, repairs)
		if len(repairs) > 0 {
			d.Message += fmt.Sprintf(" — suggested fix: %s", repairs[0])
		}
		pr.Diagnostics = append(pr.Diagnostics, d)
	}
	chop := func(level chopping.Criticality, check, theorem, under string) error {
		v, err := chopping.CheckStatic(programs, level)
		if err != nil {
			return err
		}
		if v.OK {
			return nil
		}
		id := v.IDs[v.Witness[0].From]
		anchor := flatIndex(programs, id)
		d := Diagnostic{
			Pos:      pkg.Fset.Position(flat[anchor].Pos),
			Package:  pkg.ImportPath,
			Tx:       v.Graph.Label(v.Witness[0].From),
			Check:    check,
			Category: "incorrect-chopping",
			Theorem:  theorem,
			Witness:  v.Graph.DescribeCycle(v.Witness),
		}
		d.Message = fmt.Sprintf("incorrect-chopping: critical cycle %s — session is not a correct chopping under %s (%s)",
			d.Witness, under, theorem)
		pr.Diagnostics = append(pr.Diagnostics, d)
		return nil
	}

	for _, m := range models {
		switch m {
		case depgraph.SI:
			// Every SI-dangerous structure is a pair of adjacent
			// vulnerable anti-dependencies — the (generalised) write
			// skew pattern of §2 — so the category is uniform.
			if w, ok := robustness.CheckSIRobust(app); !ok {
				robust("robustness-si", "write-skew", "Theorem 19, §6.1", "SI", w,
					robustness.RepairAgainstSI(app, robustness.RepairOptions{}))
			}
			if err := chop(chopping.SICritical, "chopping-si", "Corollary 18, §5", "SI"); err != nil {
				return err
			}
		case depgraph.PSI:
			if w, ok := robustness.CheckPSIRobust(app); !ok {
				robust("robustness-psi", "long-fork", "Theorem 22, §6.2", "PSI (towards SI)", w,
					robustness.RepairAgainstPSI(app, robustness.RepairOptions{}))
			}
			if err := chop(chopping.PSICritical, "chopping-psi", "Theorem 31, Appendix B", "PSI"); err != nil {
				return err
			}
		case depgraph.SER:
			if err := chop(chopping.SERCritical, "chopping-ser", "Theorem 29, Appendix B", "serialisability"); err != nil {
				return err
			}
		}
	}
	return nil
}

// lowerRepairs renders the advisor's verified repairs as suggested
// fixes: one SuggestedFix per promotion, rank-grouped per repair, with
// a textual Promote-stub edit when the promoting transaction's closure
// is statically visible.
func lowerRepairs(pkg *Package, groups map[string]*Tx, repairs []robustness.Repair) []SuggestedFix {
	var out []SuggestedFix
	for ri, r := range repairs {
		for _, p := range r.Promotions {
			tx := groups[p.Group]
			if tx == nil {
				continue
			}
			fix := SuggestedFix{
				Obj:     string(p.Obj),
				Txs:     p.Txs,
				Pos:     pkg.Fset.Position(tx.Pos),
				Rank:    ri + 1,
				Message: p.String(),
			}
			if tx.FixInsert.IsValid() && tx.Handle != "" {
				ip := pkg.Fset.Position(tx.FixInsert)
				fix.Edits = []TextEdit{{
					Filename: ip.Filename,
					Offset:   ip.Offset,
					End:      ip.Offset,
					NewText: fmt.Sprintf("\n\tif err := %s.Promote(%q); err != nil {\n\t\treturn err\n\t}",
						tx.Handle, string(p.Obj)),
				}}
			}
			out = append(out, fix)
		}
	}
	return out
}

// flatIndex maps a chopping PieceID back to the session-major flat
// transaction index shared with lowerApp.
func flatIndex(programs []chopping.Program, id chopping.PieceID) int {
	n := 0
	for i := 0; i < id.Program; i++ {
		n += len(programs[i].Pieces)
	}
	return n + id.Piece
}

// FormatNotes renders a package's notes one per line, for CLI output.
func (p *PackageReport) FormatNotes() string {
	if len(p.Notes) == 0 {
		return ""
	}
	return "note: " + strings.Join(p.Notes, "\nnote: ")
}
