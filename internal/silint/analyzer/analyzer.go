// Package analyzer packages silint as go/analysis-style analyzers.
//
// The container for this repository deliberately carries no
// third-party modules, so the canonical golang.org/x/tools/go/analysis
// types are unavailable; this package defines a minimal structural
// twin — Analyzer, Pass, Diagnostic, SuggestedFix, TextEdit — with the
// same shape and contract, and cmd/sivet implements the `go vet
// -vettool` driver protocol over it. An Analyzer here can be ported to
// the real API by swapping the import when x/tools is available.
//
// Each analyzer runs the silint pipeline (extraction → lowering →
// §5/§6 checks → repair advisor) over one type-checked package and
// reports silint's diagnostics, attaching two kinds of suggested
// fixes: verified read→write promotion stubs from the repair advisor,
// and // silint:obj= annotation templates at the ⊤-widening sites of
// the anchoring transaction.
package analyzer

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sian/internal/depgraph"
	"sian/internal/silint"
)

// Analyzer describes one analysis, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description.
	Doc string
	// Run executes the analysis over one package.
	Run func(*Pass) error

	models []depgraph.Model
}

// Pass carries one package through an analyzer run, mirroring
// analysis.Pass.
type Pass struct {
	// Fset positions all files of the pass.
	Fset *token.FileSet
	// Files are the parsed files of the package under analysis.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the resolution maps.
	TypesInfo *types.Info
	// ImportPath is the package's import path (Pkg.Path may be
	// shortened by some importers, so the driver supplies it).
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one reported finding, mirroring analysis.Diagnostic.
type Diagnostic struct {
	// Pos anchors the finding (resolved, not a token.Pos, so drivers
	// without the originating FileSet can render it).
	Pos token.Position
	// Category classifies the finding, e.g. "write-skew".
	Category string
	// Message is the human-readable finding.
	Message string
	// SuggestedFixes are optional machine-applicable remedies.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one remedy, mirroring analysis.SuggestedFix.
type SuggestedFix struct {
	// Message describes the fix.
	Message string
	// TextEdits implement it (empty for advisory-only fixes).
	TextEdits []TextEdit
}

// TextEdit is one byte-range replacement (End == Offset inserts).
type TextEdit struct {
	Filename string
	Offset   int
	End      int
	NewText  string
}

// New returns an analyzer running the silint checks for the given
// models (SI when empty).
func New(name, doc string, models []depgraph.Model) *Analyzer {
	a := &Analyzer{Name: name, Doc: doc, models: models}
	a.Run = a.run
	return a
}

// SI is the default analyzer: Theorem 19 robustness and Corollary 18
// chopping correctness under snapshot isolation.
var SI = New("silint",
	"report transactional programs that are not robust against snapshot isolation (write skew, incorrect chopping)",
	[]depgraph.Model{depgraph.SI})

// PSI checks robustness of parallel SI towards SI (Theorem 22) and
// chopping under PSI (Theorem 31).
var PSI = New("silintpsi",
	"report transactional programs that are not robust against parallel snapshot isolation (long fork, incorrect chopping)",
	[]depgraph.Model{depgraph.PSI})

// All runs every model's checks.
var All = New("silintall",
	"report transactional programs failing any of the paper's static criteria (SI, PSI, SER)",
	[]depgraph.Model{depgraph.SI, depgraph.PSI, depgraph.SER})

// ByName resolves an analyzer selection string (the -model vocabulary:
// si, psi, all).
func ByName(name string) (*Analyzer, error) {
	switch name {
	case "", "si", "silint":
		return SI, nil
	case "psi", "silintpsi":
		return PSI, nil
	case "all", "silintall":
		return All, nil
	}
	return nil, fmt.Errorf("unknown analyzer %q (want si, psi or all)", name)
}

// run adapts the pass to silint.AnalyzePackage.
func (a *Analyzer) run(pass *Pass) error {
	pkg := &silint.Package{
		ImportPath: pass.ImportPath,
		Dir:        pass.Dir,
		Fset:       pass.Fset,
		Files:      pass.Files,
		Types:      pass.Pkg,
		Info:       pass.TypesInfo,
	}
	pr, err := silint.AnalyzePackage(pkg, a.models)
	if err != nil {
		return err
	}
	for _, d := range pr.Diagnostics {
		out := Diagnostic{
			Pos:      d.Pos,
			Category: d.Category,
			Message:  d.Message,
		}
		for _, f := range d.Fixes {
			fix := SuggestedFix{Message: fmt.Sprintf("%s (rank %d)", f.Message, f.Rank)}
			for _, e := range f.Edits {
				fix.TextEdits = append(fix.TextEdits, TextEdit{
					Filename: e.Filename, Offset: e.Offset, End: e.End, NewText: e.NewText,
				})
			}
			out.SuggestedFixes = append(out.SuggestedFixes, fix)
		}
		out.SuggestedFixes = append(out.SuggestedFixes, annotationFixes(pass, pr, d)...)
		pass.Report(out)
	}
	return nil
}

// annotationFixes suggests // silint:obj= annotation templates at the
// ⊤-widening sites of the diagnostic's anchoring transaction: naming
// the widened keys is the other way to defuse a spurious cycle, and
// often the only one when the repair advisor is blocked by a widened
// write set.
func annotationFixes(pass *Pass, pr *silint.PackageReport, d silint.Diagnostic) []SuggestedFix {
	base := strings.TrimSuffix(d.Tx, "@it2")
	var tx *silint.Tx
	for _, s := range pr.Sessions {
		for _, t := range s.Txs {
			if t.Name == base {
				tx = t
			}
		}
	}
	if tx == nil || len(tx.WidenSites) == 0 {
		return nil
	}
	var out []SuggestedFix
	for _, site := range tx.WidenSites {
		f := pass.Fset.File(site)
		if f == nil {
			continue
		}
		pos := f.Position(site)
		lineStart := f.Offset(f.LineStart(pos.Line))
		out = append(out, SuggestedFix{
			Message: fmt.Sprintf("assert the key widened at %s:%d with a silint:obj annotation (replace KEY with the object names)", pos.Filename, pos.Line),
			TextEdits: []TextEdit{{
				Filename: pos.Filename,
				Offset:   lineStart,
				End:      lineStart,
				NewText:  "// silint:obj=KEY\n",
			}},
		})
	}
	return out
}

// Check runs the analyzer over one loaded package and returns the
// collected diagnostics (the driver-independent entry point used by
// cmd/sivet and tests).
func Check(a *Analyzer, pkg *silint.Package) ([]Diagnostic, error) {
	var out []Diagnostic
	pass := &Pass{
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		ImportPath: pkg.ImportPath,
		Dir:        pkg.Dir,
		Report:     func(d Diagnostic) { out = append(out, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}
