package analyzer

import (
	"strings"
	"testing"

	"sian/internal/silint"
)

// loadPkg loads one silint testdata package (pattern relative to the
// internal/silint directory).
func loadPkg(t *testing.T, pattern string) *silint.Package {
	t.Helper()
	l, err := silint.NewLoader("..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{pattern})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// TestAnalyzerWriteSkew: the SI analyzer reports the Figure 2(d) write
// skew with the repair advisor's promotion stubs attached.
func TestAnalyzerWriteSkew(t *testing.T) {
	t.Parallel()
	diags, err := Check(SI, loadPkg(t, "testdata/src/writeskew"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics for the write-skew fixture")
	}
	d := diags[0]
	if d.Category != "write-skew" || !strings.Contains(d.Message, "Theorem 19") {
		t.Errorf("diagnostic = %+v", d)
	}
	if d.Pos.Line == 0 || !strings.HasSuffix(d.Pos.Filename, "main.go") {
		t.Errorf("diagnostic not anchored: %+v", d.Pos)
	}
	var promote *SuggestedFix
	for i, f := range d.SuggestedFixes {
		if strings.Contains(f.Message, "promote read of") {
			promote = &d.SuggestedFixes[i]
			break
		}
	}
	if promote == nil {
		t.Fatalf("no promotion fix among %+v", d.SuggestedFixes)
	}
	if len(promote.TextEdits) == 0 || !strings.Contains(promote.TextEdits[0].NewText, ".Promote(") {
		t.Errorf("promotion fix edits = %+v", promote.TextEdits)
	}
}

// TestAnalyzerAnnotationFix: when the anchoring transaction was
// ⊤-widened, the analyzer suggests a silint:obj annotation template at
// the widening site.
func TestAnalyzerAnnotationFix(t *testing.T) {
	t.Parallel()
	diags, err := Check(SI, loadPkg(t, "testdata/src/widenwrites"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics for the widenwrites fixture")
	}
	var annot *SuggestedFix
	for _, d := range diags {
		for i, f := range d.SuggestedFixes {
			if strings.Contains(f.Message, "silint:obj annotation") {
				annot = &d.SuggestedFixes[i]
			}
		}
	}
	if annot == nil {
		t.Fatal("no annotation fix suggested for the widened anchor")
	}
	if len(annot.TextEdits) != 1 || !strings.Contains(annot.TextEdits[0].NewText, "silint:obj=") {
		t.Errorf("annotation edits = %+v", annot.TextEdits)
	}
	if annot.TextEdits[0].Offset != annot.TextEdits[0].End {
		t.Errorf("annotation edit is not a pure insertion: %+v", annot.TextEdits[0])
	}
}

// TestAnalyzerClean: a robust package yields no findings.
func TestAnalyzerClean(t *testing.T) {
	t.Parallel()
	diags, err := Check(SI, loadPkg(t, "fixtures/banking"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("diagnostics on clean package: %+v", diags)
	}
}

// TestByName pins the selection vocabulary shared with SIVET_MODEL.
func TestByName(t *testing.T) {
	t.Parallel()
	for name, want := range map[string]*Analyzer{"": SI, "si": SI, "psi": PSI, "all": All} {
		a, err := ByName(name)
		if err != nil || a != want {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus analyzer name accepted")
	}
}
