package silint

import (
	"fmt"

	"sian/internal/chopping"
	"sian/internal/model"
	"sian/internal/robustness"
)

// TopObj is the materialisation of ⊤: a distinguished object that is a
// member of every widened set. Together with the package universe it
// makes plain set intersection implement abstract intersection: two ⊤
// sets meet on TopObj, and a ⊤ set meets every named set on the
// universe.
const TopObj = model.Obj("⊤")

// txEntry is one lowered transaction occurrence with its display label
// (loop iterations and session instances get suffixed labels).
type txEntry struct {
	tx    *Tx
	label string
}

// loweredSession is one concrete session instance fed to the static
// analyses.
type loweredSession struct {
	name string
	txs  []txEntry
}

// expandSessions turns extracted sessions into the concrete instances
// the analyses see: a transaction called inside a loop is listed twice
// in its session (modelling repeated sequential execution — two copies
// suffice for the pairwise intersections the analyses compute). Each
// session is analysed as a single instance, matching the library
// convention that a transaction running concurrently with itself must
// be listed in two sessions; extraction emits a note for sessions that
// may be multiply instantiated (see Session.MultiInstance).
func expandSessions(sessions []*Session) []loweredSession {
	var out []loweredSession
	for _, s := range sessions {
		var base []txEntry
		for _, t := range s.Txs {
			base = append(base, txEntry{t, t.Name})
			if t.InLoop {
				base = append(base, txEntry{t, t.Name + "@it2"})
			}
		}
		if len(base) == 0 {
			continue
		}
		out = append(out, loweredSession{s.Name, base})
	}
	return out
}

// universeOf collects every named object mentioned by any set, plus
// TopObj: the concrete domain widened sets materialise to.
func universeOf(expanded []loweredSession) []model.Obj {
	all := []model.Obj{TopObj}
	for _, s := range expanded {
		for _, e := range s.txs {
			all = append(all, e.tx.Reads.Objects()...)
			all = append(all, e.tx.Writes.Objects()...)
		}
	}
	return model.NormalizeObjs(all)
}

// materialize lowers an abstract set to a concrete object slice over
// the universe.
func materialize(s *ObjSet, universe []model.Obj) []model.Obj {
	if s.Top {
		return universe
	}
	return s.Objects()
}

// lowerApp lowers the expanded sessions to a robustness.App. The
// returned slice maps the App's static-graph vertices (session-major
// order, as BuildStatic flattens them) back to extracted transactions.
// A ⊤-widened write set is marked WritesWidened so the vulnerability
// refinement of §6 is disabled for its anti-dependencies: the
// materialised universe would otherwise intersect every write set and
// unsoundly defuse dangerous structures.
// Every specification carries a PromoteGroup keyed by its source
// transaction, so the repair advisor promotes all loop-expanded copies
// of one extracted transaction jointly; the returned groups map leads
// from group key back to the source transaction for fix rendering.
func lowerApp(expanded []loweredSession, universe []model.Obj) (robustness.App, []*Tx, map[string]*Tx) {
	var sessions []robustness.SessionSpec
	var flat []*Tx
	groups := make(map[string]*Tx)
	groupOf := make(map[*Tx]string)
	for _, s := range expanded {
		spec := robustness.SessionSpec{Name: s.name}
		for _, e := range s.txs {
			ts := robustness.NewTxSpec(e.label,
				materialize(e.tx.Reads, universe),
				materialize(e.tx.Writes, universe))
			ts.WritesWidened = e.tx.Writes.Top
			g, seen := groupOf[e.tx]
			if !seen {
				g = fmt.Sprintf("g%d", len(groups))
				groupOf[e.tx] = g
				groups[g] = e.tx
			}
			ts.PromoteGroup = g
			spec.Txs = append(spec.Txs, ts)
			flat = append(flat, e.tx)
		}
		sessions = append(sessions, spec)
	}
	return robustness.NewApp(sessions...), flat, groups
}

// lowerPrograms lowers the expanded sessions to chopping programs: a
// session whose transactions arose from chopping a single logical
// transaction is exactly a program, with one piece per transaction.
// Vertex order of SCG (program-major) matches the flat slice returned
// by lowerApp. Chopping has no vulnerability refinement, so ⊤
// materialisation alone is conservative there.
func lowerPrograms(expanded []loweredSession, universe []model.Obj) []chopping.Program {
	progs := make([]chopping.Program, 0, len(expanded))
	for _, s := range expanded {
		pieces := make([]chopping.Piece, 0, len(s.txs))
		for _, e := range s.txs {
			pieces = append(pieces, chopping.NewPiece(e.label,
				materialize(e.tx.Reads, universe),
				materialize(e.tx.Writes, universe)))
		}
		progs = append(progs, chopping.NewProgram(s.name, pieces...))
	}
	return progs
}
