package silint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"

	"sian/internal/model"
)

// ObjSet is the abstract object set the extractor computes for each
// transaction: a set of named objects, plus a ⊤ element standing for
// "any object" when a key could not be resolved statically. ⊤
// conservatively intersects everything, so widening only ever adds
// dependency edges to the lowered static graphs.
type ObjSet struct {
	objs map[model.Obj]bool
	// Top records that the set was widened to ⊤.
	Top bool
}

func newObjSet() *ObjSet { return &ObjSet{objs: make(map[model.Obj]bool)} }

func (s *ObjSet) add(objs []model.Obj, top bool) {
	for _, x := range objs {
		s.objs[x] = true
	}
	if top {
		s.Top = true
	}
}

// Objects returns the named objects of the set, sorted. When Top is
// set the named objects are still meaningful: they were resolved
// precisely and the set additionally contains every other object.
func (s *ObjSet) Objects() []model.Obj {
	out := make([]model.Obj, 0, len(s.objs))
	for x := range s.objs {
		out = append(out, x)
	}
	return model.NormalizeObjs(out)
}

// String renders e.g. "{acct1, acct2}" or "⊤∪{acct1}".
func (s *ObjSet) String() string {
	names := make([]string, 0, len(s.objs))
	for _, x := range s.Objects() {
		names = append(names, string(x))
	}
	set := "{" + strings.Join(names, ", ") + "}"
	if s.Top {
		if len(names) == 0 {
			return "⊤"
		}
		return "⊤∪" + set
	}
	return set
}

// TxKind distinguishes how a transaction span was written.
type TxKind int

// Transaction span kinds.
const (
	TxInvalid TxKind = iota
	// TxTransact is a Session.Transact/TransactNamed closure.
	TxTransact
	// TxManual is a Session.Begin … Commit/Abort span.
	TxManual
)

// Tx is one extracted transaction: the static over-approximation of
// the read and write sets of a Transact closure or manual Begin span,
// anchored at its call site.
type Tx struct {
	// Name labels the transaction in witnesses: the constant name
	// passed to TransactNamed/Begin, or a position-derived fallback.
	Name string
	// Pos is the Transact/TransactNamed/Begin call position.
	Pos token.Pos
	// Kind records the span style.
	Kind TxKind
	// Reads and Writes are the extracted abstract sets.
	Reads, Writes *ObjSet
	// InLoop marks a span whose call site is inside a loop; the
	// lowering duplicates it within its session to model repeated
	// sequential execution.
	InLoop bool
	// FixInsert is the position just after the opening brace of the
	// transaction body (when statically visible): the anchor where a
	// suggested Promote stub can be inserted textually.
	FixInsert token.Pos
	// Handle is the name of the body's transaction parameter, for
	// rendering suggested-fix stubs.
	Handle string
	// WidenSites are the positions whose key (or handle) resolution
	// widened a set to ⊤ — the places a silint:obj annotation would
	// restore precision.
	WidenSites []token.Pos
}

// Session is an ordered list of transactions extracted for one session
// identity (a session variable, or a single call site when the
// receiver expression has no stable identity).
type Session struct {
	// Name is a display name (the receiver variable, usually).
	Name string
	// Txs in syntactic order, which over-approximates session order.
	Txs []*Tx
	// MultiInstance marks a session that may be instantiated more than
	// once at run time (any session not rooted in a local variable of
	// func main). The analyses still treat it as a single instance —
	// the library convention is that self-concurrent transactions are
	// listed in two sessions — but extraction emits a note so the
	// assumption is visible.
	MultiInstance bool
}

// annotationRE is the escape-hatch comment: silint:obj=a or
// silint:obj=a,b on the call line or the line above asserts the set of
// objects a key expression may denote.
var annotationRE = regexp.MustCompile(`silint:obj=([^\s]+)`)

// extractor walks one package and produces its sessions.
type extractor struct {
	pkg *Package

	// prepass state
	annots    map[string]map[int][]model.Obj // filename → line → asserted objects
	assigns   map[types.Object]int
	assignRHS map[types.Object]ast.Expr
	addrTaken map[types.Object]bool
	loopRange []posRange

	// walk state
	sessions     []*Session
	sessionByObj map[types.Object]*Session
	manual       map[types.Object]*Tx   // current binding, for Read/Write dispatch
	manualAll    map[types.Object][]*Tx // every tx ever bound, for escape widening
	okIdent      map[*ast.Ident]bool
	beginDone    map[*ast.CallExpr]bool
	inMain       bool
	fnName       string

	// interprocedural state (interproc.go)
	summaries   map[sumKey]*summary
	summarizing map[*types.Func]bool
	goCalls     map[*ast.CallExpr]bool // calls that are `go` statements

	notes     []string
	widenings int
}

type posRange struct{ from, to token.Pos }

func newExtractor(pkg *Package) *extractor {
	return &extractor{
		pkg:          pkg,
		annots:       make(map[string]map[int][]model.Obj),
		assigns:      make(map[types.Object]int),
		assignRHS:    make(map[types.Object]ast.Expr),
		addrTaken:    make(map[types.Object]bool),
		sessionByObj: make(map[types.Object]*Session),
		manual:       make(map[types.Object]*Tx),
		manualAll:    make(map[types.Object][]*Tx),
		okIdent:      make(map[*ast.Ident]bool),
		beginDone:    make(map[*ast.CallExpr]bool),
		summaries:    make(map[sumKey]*summary),
		summarizing:  make(map[*types.Func]bool),
		goCalls:      make(map[*ast.CallExpr]bool),
	}
}

// extract runs the full extraction for the package.
func (e *extractor) extract() {
	e.prepass()
	for _, f := range e.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e.inMain = e.pkg.Types.Name() == "main" && fd.Recv == nil && fd.Name.Name == "main"
			e.fnName = fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					e.handleAssign(s)
				case *ast.ValueSpec:
					e.handleValueSpec(s)
				case *ast.ExprStmt:
					e.handleBareBegin(s)
				case *ast.CallExpr:
					e.handleCall(s)
				}
				return true
			})
			e.checkManualEscapes(fd)
		}
	}
	for _, s := range e.sessions {
		if s.MultiInstance && len(s.Txs) > 0 {
			e.note(s.Txs[0].Pos, "session %s is declared outside func main and may be instantiated more than once; the analysis assumes a single instance (model self-concurrency by running the code under a second, distinct session)", s.Name)
		}
	}
}

// prepass collects annotations, per-object assignment counts and
// right-hand sides (for constant propagation), address-taking, and
// loop body ranges.
func (e *extractor) prepass() {
	for _, f := range e.pkg.Files {
		fname := e.pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := annotationRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := e.pkg.Fset.Position(c.Slash).Line
				var objs []model.Obj
				for _, name := range strings.Split(m[1], ",") {
					if name = strings.TrimSpace(name); name != "" {
						objs = append(objs, model.Obj(name))
					}
				}
				if e.annots[fname] == nil {
					e.annots[fname] = make(map[int][]model.Obj)
				}
				e.annots[fname][line] = objs
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				aligned := len(s.Lhs) == len(s.Rhs)
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := e.objectOf(id)
					if obj == nil {
						continue
					}
					e.assigns[obj]++
					if aligned && e.assigns[obj] == 1 {
						e.assignRHS[obj] = s.Rhs[i]
					} else {
						delete(e.assignRHS, obj)
					}
				}
			case *ast.ValueSpec:
				aligned := len(s.Names) == len(s.Values)
				for i, id := range s.Names {
					if len(s.Values) == 0 {
						continue // zero-value declaration; a later assignment may still be single
					}
					obj := e.objectOf(id)
					if obj == nil {
						continue
					}
					e.assigns[obj]++
					if aligned && e.assigns[obj] == 1 {
						e.assignRHS[obj] = s.Values[i]
					} else {
						delete(e.assignRHS, obj)
					}
				}
			case *ast.IncDecStmt:
				if id, ok := s.X.(*ast.Ident); ok {
					if obj := e.objectOf(id); obj != nil {
						e.assigns[obj]++
						delete(e.assignRHS, obj)
					}
				}
			case *ast.RangeStmt:
				for _, x := range []ast.Expr{s.Key, s.Value} {
					if id, ok := x.(*ast.Ident); ok {
						if obj := e.objectOf(id); obj != nil {
							e.assigns[obj] += 2 // reassigned every iteration
							delete(e.assignRHS, obj)
						}
					}
				}
				e.loopRange = append(e.loopRange, posRange{s.Body.Pos(), s.Body.End()})
			case *ast.ForStmt:
				e.loopRange = append(e.loopRange, posRange{s.Body.Pos(), s.Body.End()})
			case *ast.GoStmt:
				e.goCalls[s.Call] = true
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					if id, ok := unparen(s.X).(*ast.Ident); ok {
						if obj := e.objectOf(id); obj != nil {
							e.addrTaken[obj] = true
						}
					}
				}
			}
			return true
		})
	}
}

func (e *extractor) objectOf(id *ast.Ident) types.Object {
	if obj := e.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return e.pkg.Info.Uses[id]
}

func (e *extractor) inLoop(pos token.Pos) bool {
	for _, r := range e.loopRange {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// isEngineNamed reports whether t is (a pointer to) the named engine
// type, matched through the sian facade's aliases.
func isEngineNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sian/internal/engine" || strings.HasSuffix(path, "/internal/engine")
}

// methodCall resolves call to (receiver expression, receiver engine
// type name, method name) when it is a method call on one of the
// engine's transaction-facing types.
func (e *extractor) methodCall(call *ast.CallExpr) (recv ast.Expr, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	selInfo := e.pkg.Info.Selections[sel]
	if selInfo == nil || selInfo.Kind() != types.MethodVal {
		return nil, "", "", false
	}
	for _, name := range []string{"Session", "Tx", "ManualTx"} {
		if isEngineNamed(selInfo.Recv(), name) {
			return sel.X, name, sel.Sel.Name, true
		}
	}
	return nil, "", "", false
}

// beginCall recognises x as a Session.Begin call and returns its
// receiver expression.
func (e *extractor) beginCall(x ast.Expr) (recv ast.Expr, call *ast.CallExpr, ok bool) {
	call, isCall := unparen(x).(*ast.CallExpr)
	if !isCall {
		return nil, nil, false
	}
	recv, typeName, method, ok := e.methodCall(call)
	if !ok || typeName != "Session" || method != "Begin" {
		return nil, nil, false
	}
	return recv, call, true
}

// handleAssign registers manual transactions: tx, err := sess.Begin(…).
func (e *extractor) handleAssign(s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	recv, call, ok := e.beginCall(s.Rhs[0])
	if !ok {
		return
	}
	e.bindBegin(s.Lhs, recv, call)
}

// handleValueSpec registers manual transactions declared with var:
// var tx, err = sess.Begin(…).
func (e *extractor) handleValueSpec(s *ast.ValueSpec) {
	if len(s.Values) != 1 {
		return
	}
	recv, call, ok := e.beginCall(s.Values[0])
	if !ok {
		return
	}
	lhs := make([]ast.Expr, len(s.Names))
	for i, id := range s.Names {
		lhs[i] = id
	}
	e.bindBegin(lhs, recv, call)
}

// handleBareBegin recognises a Begin used as a bare expression
// statement: both results are discarded, so the span can never perform
// a read or write and soundly keeps empty sets.
func (e *extractor) handleBareBegin(s *ast.ExprStmt) {
	recv, call, ok := e.beginCall(s.X)
	if !ok {
		return
	}
	e.beginDone[call] = true
	e.beginTx(recv, call)
}

// bindBegin registers the manual transaction produced by a Begin call
// whose results are bound to lhs. A handle bound to a plain variable
// is tracked precisely; one discarded via _ keeps empty sets; anything
// else (a field, a map entry, an unresolved name) escapes the
// abstraction and is widened to ⊤.
func (e *extractor) bindBegin(lhs []ast.Expr, recv ast.Expr, call *ast.CallExpr) {
	e.beginDone[call] = true
	tx := e.beginTx(recv, call)
	if len(lhs) == 0 {
		return
	}
	id, isIdent := unparen(lhs[0]).(*ast.Ident)
	if isIdent && id.Name == "_" {
		return // handle discarded: the span cannot read or write
	}
	var obj types.Object
	if isIdent {
		obj = e.objectOf(id)
	}
	if obj == nil {
		e.widen(tx, call.Pos(), "Begin result is not bound to a plain variable")
		return
	}
	// Rebinding the variable is not an escape of the previous handle.
	e.okIdent[id] = true
	e.manual[obj] = tx
	e.manualAll[obj] = append(e.manualAll[obj], tx)
}

// beginTx creates the manual transaction for a Begin call and appends
// it to the receiver's session.
func (e *extractor) beginTx(recv ast.Expr, call *ast.CallExpr) *Tx {
	name := ""
	if len(call.Args) > 0 {
		name = e.constString(call.Args[0])
	}
	tx := &Tx{
		Name:   e.txName(name, call),
		Pos:    call.Pos(),
		Kind:   TxManual,
		Reads:  newObjSet(),
		Writes: newObjSet(),
		InLoop: e.inLoop(call.Pos()),
	}
	e.sessionFor(recv, call).Txs = append(e.sessionFor(recv, call).Txs, tx)
	return tx
}

// handleCall dispatches Transact/TransactNamed/Begin on sessions and
// Read/Write/Commit/Abort on tracked manual transactions.
func (e *extractor) handleCall(call *ast.CallExpr) {
	recv, typeName, method, ok := e.methodCall(call)
	if !ok {
		e.handleManualHelper(call)
		return
	}
	switch typeName {
	case "Session":
		switch method {
		case "Transact":
			if len(call.Args) == 1 {
				e.handleTransact(call, recv, "", call.Args[0])
			}
		case "TransactNamed":
			if len(call.Args) == 2 {
				e.handleTransact(call, recv, e.constString(call.Args[0]), call.Args[1])
			}
		case "Begin":
			if !e.beginDone[call] {
				// Begin whose result is consumed by anything other than
				// a plain variable binding or a bare expression
				// statement — returned to a caller, passed to a helper,
				// stored through a field — hands the handle to code we
				// cannot see; only ⊤ is sound for its sets.
				e.beginDone[call] = true
				tx := e.beginTx(recv, call)
				e.widen(tx, call.Pos(), "Begin result escapes (not bound to a plain variable)")
			}
		}
	case "ManualTx":
		id, ok := unparen(recv).(*ast.Ident)
		if !ok {
			return
		}
		obj := e.pkg.Info.Uses[id]
		tx, tracked := e.manual[obj]
		if !tracked {
			return
		}
		switch method {
		case "Read":
			if len(call.Args) == 1 {
				tx.Reads.add(e.resolveObj(call.Args[0], call, tx))
				e.okIdent[id] = true
			}
		case "Write":
			if len(call.Args) == 2 {
				tx.Writes.add(e.resolveObj(call.Args[0], call, tx))
				e.okIdent[id] = true
			}
		case "Promote":
			if len(call.Args) == 1 {
				objs, top := e.resolveObj(call.Args[0], call, tx)
				tx.Reads.add(objs, top)
				tx.Writes.add(objs, top)
				e.okIdent[id] = true
			}
		case "Commit", "Abort":
			e.okIdent[id] = true
		}
	}
}

// handleManualHelper intercepts plain calls that pass a tracked manual
// transaction handle to a helper function, instantiating the helper's
// interprocedural summary instead of letting the handle escape.
func (e *extractor) handleManualHelper(call *ast.CallExpr) {
	if _, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		// A method call forwarding the handle is not summarisable (the
		// receiver may retain it); leave it to the escape check.
		if e.funcDeclFor(call.Fun) == nil {
			return
		}
	}
	applied := make(map[types.Object]bool)
	for _, arg := range call.Args {
		id, isIdent := unparen(arg).(*ast.Ident)
		if !isIdent {
			continue
		}
		obj := e.pkg.Info.Uses[id]
		tx, tracked := e.manual[obj]
		if !tracked || applied[obj] {
			continue
		}
		applied[obj] = true
		if e.applyHelperCall(call, obj, tx) {
			for _, a := range call.Args {
				if aid, aIsIdent := unparen(a).(*ast.Ident); aIsIdent && e.pkg.Info.Uses[aid] == obj {
					e.okIdent[aid] = true
				}
			}
		}
	}
}

// handleTransact extracts one Transact/TransactNamed call: the closure
// (or same-package named handler) body is abstractly interpreted for
// tx.Read/tx.Write call sites.
func (e *extractor) handleTransact(call *ast.CallExpr, recv ast.Expr, name string, fnArg ast.Expr) {
	tx := &Tx{
		Name:   e.txName(name, call),
		Pos:    call.Pos(),
		Kind:   TxTransact,
		Reads:  newObjSet(),
		Writes: newObjSet(),
		InLoop: e.inLoop(call.Pos()),
	}
	sess := e.sessionFor(recv, call)
	sess.Txs = append(sess.Txs, tx)

	var body *ast.BlockStmt
	var txObj types.Object
	switch fn := unparen(fnArg).(type) {
	case *ast.FuncLit:
		body = fn.Body
		txObj = e.paramObj(fn.Type)
	default:
		if fd := e.funcDeclFor(fnArg); fd != nil && fd.Body != nil {
			body = fd.Body
			txObj = e.paramObj(fd.Type)
		}
	}
	if body == nil {
		e.widen(tx, call.Pos(), "transaction body is not statically visible")
		return
	}
	tx.FixInsert = body.Lbrace + 1
	if txObj == nil {
		return // no way to name the tx handle: the body cannot read or write
	}
	tx.Handle = txObj.Name()
	e.extractOps(body, txObj, tx)
}

// paramObj returns the object of the first parameter of the function
// type, or nil when it is unnamed or blank.
func (e *extractor) paramObj(ft *ast.FuncType) types.Object {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return nil
	}
	names := ft.Params.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return e.pkg.Info.Defs[names[0]]
}

// funcDeclFor resolves an expression used as a Transact handler to a
// same-package top-level function declaration.
func (e *extractor) funcDeclFor(x ast.Expr) *ast.FuncDecl {
	var obj types.Object
	switch f := unparen(x).(type) {
	case *ast.Ident:
		obj = e.pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = e.pkg.Info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != e.pkg.Types {
		return nil
	}
	for _, file := range e.pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && e.pkg.Info.Defs[fd.Name] == obj {
				return fd
			}
		}
	}
	return nil
}

// extractOps walks a transaction body, adding every tx.Read/tx.Write/
// tx.Promote key to the sets and instantiating summaries of helper
// functions the handle is passed to (interproc.go); any other use of
// the transaction handle (storing it, launching a goroutine with it,
// aliasing it) escapes the abstraction and widens both sets to ⊤.
func (e *extractor) extractOps(body *ast.BlockStmt, txObj types.Object, tx *Tx) {
	ok := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			id, isIdent := unparen(sel.X).(*ast.Ident)
			if !isIdent || e.pkg.Info.Uses[id] != txObj {
				return true
			}
			switch sel.Sel.Name {
			case "Read":
				if len(call.Args) == 1 {
					tx.Reads.add(e.resolveObj(call.Args[0], call, tx))
					ok[id] = true
				}
			case "Write":
				if len(call.Args) == 2 {
					tx.Writes.add(e.resolveObj(call.Args[0], call, tx))
					ok[id] = true
				}
			case "Promote":
				if len(call.Args) == 1 {
					objs, top := e.resolveObj(call.Args[0], call, tx)
					tx.Reads.add(objs, top)
					tx.Writes.add(objs, top)
					ok[id] = true
				}
			}
			return true
		}
		// A plain call receiving the handle as an argument: apply the
		// callee's interprocedural summary when one can be computed.
		if e.applyHelperCall(call, txObj, tx) {
			for _, arg := range call.Args {
				if id, isIdent := unparen(arg).(*ast.Ident); isIdent && e.pkg.Info.Uses[id] == txObj {
					ok[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || ok[id] || e.pkg.Info.Uses[id] != txObj {
			return true
		}
		e.widen(tx, id.Pos(), fmt.Sprintf("transaction handle %s escapes the closure", id.Name))
		return false
	})
}

// checkManualEscapes widens manual transactions whose handle is used
// outside the recognised Read/Write/Commit/Abort receivers.
func (e *extractor) checkManualEscapes(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || e.okIdent[id] {
			return true
		}
		obj := e.pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		// The variable may have been rebound across several Begin
		// calls and the escaping use could refer to any of the bound
		// handles, so every one of them is widened.
		for _, tx := range e.manualAll[obj] {
			e.widen(tx, id.Pos(), fmt.Sprintf("transaction handle %s escapes", id.Name))
		}
		return true
	})
}

// widen moves both sets of the transaction to ⊤ (recorded once).
func (e *extractor) widen(tx *Tx, pos token.Pos, why string) {
	if tx.Reads.Top && tx.Writes.Top {
		return
	}
	tx.Reads.Top = true
	tx.Writes.Top = true
	tx.WidenSites = append(tx.WidenSites, pos)
	e.widenings++
	e.note(pos, "%s: read/write sets widened to ⊤", why)
}

func (e *extractor) note(pos token.Pos, format string, args ...any) {
	e.notes = append(e.notes, fmt.Sprintf("%s: %s", e.position(pos), fmt.Sprintf(format, args...)))
}

func (e *extractor) position(pos token.Pos) string {
	p := e.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// txName derives the transaction label: the constant name argument
// when available, a position fallback otherwise.
func (e *extractor) txName(name string, call *ast.CallExpr) string {
	if name != "" {
		return name
	}
	return "tx@" + e.position(call.Pos())
}

// constString evaluates x as a compile-time string constant ("" when
// it is not one).
func (e *extractor) constString(x ast.Expr) string {
	tv, ok := e.pkg.Info.Types[x]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// resolveObj resolves an object-key expression to named objects, or ⊤.
// Resolution order: the silint:obj annotation on the call line (or the
// line above), compile-time constants (go/types folds constant
// expressions, including conversions of constants to model.Obj),
// single-assignment variables whose right-hand side resolves
// (recursively), and explicit conversions of a resolvable operand.
// Everything else — loop variables, function parameters, computed keys
// — widens to ⊤.
func (e *extractor) resolveObj(arg ast.Expr, call *ast.CallExpr, tx *Tx) ([]model.Obj, bool) {
	if objs, ok := e.annotationAt(call.Pos()); ok {
		return objs, false
	}
	objs, top := e.resolveExpr(arg, make(map[types.Object]bool))
	if top {
		if tx != nil {
			tx.WidenSites = append(tx.WidenSites, call.Pos())
		}
		e.widenings++
		e.note(call.Pos(), "object key %s is not a resolvable constant: widened to ⊤ (annotate with // silint:obj=<name> to assert the key)", exprText(arg))
	}
	return objs, top
}

func (e *extractor) annotationAt(pos token.Pos) ([]model.Obj, bool) {
	p := e.pkg.Fset.Position(pos)
	lines := e.annots[p.Filename]
	if lines == nil {
		return nil, false
	}
	if objs, ok := lines[p.Line]; ok {
		return objs, true
	}
	if objs, ok := lines[p.Line-1]; ok {
		return objs, true
	}
	return nil, false
}

func (e *extractor) resolveExpr(x ast.Expr, visited map[types.Object]bool) ([]model.Obj, bool) {
	x = unparen(x)
	if s := e.constString(x); s != "" {
		return []model.Obj{model.Obj(s)}, false
	}
	switch v := x.(type) {
	case *ast.Ident:
		obj := e.pkg.Info.Uses[v]
		vr, ok := obj.(*types.Var)
		if !ok || visited[vr] || e.assigns[vr] != 1 || e.addrTaken[vr] {
			return nil, true
		}
		rhs, ok := e.assignRHS[vr]
		if !ok {
			return nil, true
		}
		visited[vr] = true
		return e.resolveExpr(rhs, visited)
	case *ast.CallExpr:
		// A conversion like model.Obj(k): resolve the operand.
		if len(v.Args) == 1 {
			if tv, ok := e.pkg.Info.Types[v.Fun]; ok && tv.IsType() {
				return e.resolveExpr(v.Args[0], visited)
			}
		}
	}
	return nil, true
}

// exprText renders a short source-like description of an expression.
func exprText(x ast.Expr) string {
	switch v := unparen(x).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprText(v.Fun) + "(…)"
	case *ast.BasicLit:
		return v.Value
	case *ast.IndexExpr:
		return exprText(v.X) + "[…]"
	default:
		return fmt.Sprintf("<%T>", x)
	}
}

// sessionFor returns the session for a Transact/Begin receiver
// expression: calls through the same never-reassigned plain variable
// share a session (giving session order between their transactions);
// anything else — including struct fields, whose types.Var is shared
// across instances — gets a fresh per-call-site session, which
// conservatively treats the transactions as concurrent.
func (e *extractor) sessionFor(recv ast.Expr, call *ast.CallExpr) *Session {
	recv = unparen(recv)
	var obj types.Object
	name := exprText(recv)
	if !e.inMain && e.fnName != "" {
		// Qualify by function so sessions of different helpers do not
		// share a display name (e.g. "TransferChopped.s").
		name = e.fnName + "." + name
	}
	multi := !e.inMain
	switch r := recv.(type) {
	case *ast.Ident:
		obj = e.pkg.Info.Uses[r]
		if vr, ok := obj.(*types.Var); ok && e.assigns[vr] <= 1 && !e.addrTaken[vr] {
			if e.inLoop(vr.Pos()) {
				// A session created per loop iteration is many sessions.
				multi = true
			}
			if s, found := e.sessionByObj[obj]; found {
				if multi {
					s.MultiInstance = true
				}
				return s
			}
			s := &Session{Name: name, MultiInstance: multi}
			e.sessionByObj[obj] = s
			e.sessions = append(e.sessions, s)
			return s
		}
		if obj != nil {
			e.note(call.Pos(), "session %s has no stable identity (reassigned or aliased); treating this call site as its own session — chopping conclusions may be incomplete", name)
		}
	case *ast.SelectorExpr:
		// A field receiver (x.sess) resolves to the field's types.Var —
		// one object shared by every instance of the struct — so calls
		// through different instances would merge into a single session
		// and fabricate session order between genuinely concurrent
		// transactions. A field is therefore never a stable identity.
		e.note(call.Pos(), "session %s is reached through a field and may denote a different instance at each call site; treating this call site as its own session — chopping conclusions may be incomplete", name)
	}
	s := &Session{Name: name + "@" + e.position(call.Pos()), MultiInstance: multi}
	e.sessions = append(e.sessions, s)
	return s
}
