package silint

import (
	"strings"
	"testing"

	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/silint/fixtures/audit"
	"sian/internal/silint/fixtures/banking"
)

// TestDifferentialSoundness runs the fixture workloads on the SI
// reference engine and checks that every dynamically recorded read and
// write is covered by the statically extracted set for the same
// transaction: the extraction must be a sound over-approximation.
func TestDifferentialSoundness(t *testing.T) {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{
		banking.Acct1: 300, banking.Acct2: 100,
	}); err != nil {
		t.Fatal(err)
	}
	teller := db.Session("teller")
	if err := banking.TransferChopped(teller, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := banking.Lookup1(db.Session("auditor1")); err != nil {
		t.Fatal(err)
	}
	if _, err := banking.Lookup2(db.Session("auditor2")); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.SumAll(db.Session("summer"),
		[]model.Obj{banking.Acct1, banking.Acct2}); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.AuditNamed(db.Session("checker"), banking.Acct2); err != nil {
		t.Fatal(err)
	}

	report, err := Analyze([]string{"fixtures/banking", "fixtures/audit"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	static := make(map[string]*Tx) // tx name → extracted spec
	for _, pkg := range report.Packages {
		for _, s := range pkg.Sessions {
			for _, tx := range s.Txs {
				if _, dup := static[tx.Name]; dup {
					t.Fatalf("ambiguous transaction name %q across fixtures", tx.Name)
				}
				static[tx.Name] = tx
			}
		}
	}

	covered := func(s *ObjSet, x model.Obj) bool {
		if s.Top {
			return true
		}
		for _, o := range s.Objects() {
			if o == x {
				return true
			}
		}
		return false
	}
	checked := 0
	for _, sess := range db.History().Sessions() {
		if sess.ID == model.InitTransactionID {
			continue
		}
		for _, tr := range sess.Transactions {
			// Recorded ids are "<session>/<name>"; the name matches the
			// extracted transaction label.
			name := tr.ID[strings.LastIndex(tr.ID, "/")+1:]
			tx, ok := static[name]
			if !ok {
				t.Errorf("recorded transaction %s has no extracted counterpart %q", tr.ID, name)
				continue
			}
			for _, x := range tr.ReadSet() {
				if !covered(tx.Reads, x) {
					t.Errorf("%s: dynamic read of %s not covered by static reads %s", tr.ID, x, tx.Reads)
				}
			}
			for _, x := range tr.WriteSet() {
				if !covered(tx.Writes, x) {
					t.Errorf("%s: dynamic write of %s not covered by static writes %s", tr.ID, x, tx.Writes)
				}
			}
			checked++
		}
	}
	if checked < 6 {
		t.Errorf("only %d transactions checked, want at least 6", checked)
	}
}
