package silint

import (
	"os"
	"testing"

	"sian/internal/depgraph"
)

// TestDirAnchorsRelativePatterns pins the Options.Dir contract:
// relative patterns resolve against Dir, not the process working
// directory.
func TestDirAnchorsRelativePatterns(t *testing.T) {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(t.TempDir())
	report, err := Analyze([]string{"testdata/src/writeskew"}, Options{
		Dir:    dir,
		Models: []depgraph.Model{depgraph.SI},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := report.Anomalies(); n == 0 {
		t.Fatal("expected the writeskew fixture to be flagged")
	}
}
