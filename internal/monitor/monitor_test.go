package monitor

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/histio"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/workload"
)

var allModels = []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}

// offlineCertify mirrors how sicheck certifies a static history: a
// leading transaction named "init" is taken as the history's own
// initialisation (pinned first), otherwise the checker's virtual init
// is added.
func offlineCertify(t *testing.T, h *model.History, m depgraph.Model) *check.Result {
	t.Helper()
	opts := check.Options{Parallelism: 1}
	if h.NumTransactions() > 0 && h.Transaction(0).ID == model.InitTransactionID {
		opts.NoInit = true
		opts.PinInit = true
	}
	res, err := check.Certify(h, m, opts)
	if err != nil {
		t.Fatalf("offline certify: %v", err)
	}
	return res
}

// streamHistory replays a static history through a monitor and
// returns the final report.
func streamHistory(t *testing.T, h *model.History, cfg Config) *Report {
	t.Helper()
	mon := New(cfg)
	for _, ev := range histio.HistoryToEvents(h) {
		mon.Ingest(ev)
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatalf("monitor finish: %v", err)
	}
	return rep
}

// TestDifferentialExamples checks the monitor against the offline
// certifier (and the paper's expected classifications) on the worked
// examples, across every model.
func TestDifferentialExamples(t *testing.T) {
	t.Parallel()
	for _, ex := range workload.Examples() {
		for _, m := range allModels {
			off := offlineCertify(t, ex.History, m)
			rep := streamHistory(t, ex.History, Config{Model: m})
			if rep.Member != off.Member {
				t.Errorf("%s under %v: monitor member = %v, offline = %v",
					ex.Name, m, rep.Member, off.Member)
			}
			if !rep.Definitive {
				t.Errorf("%s under %v: verdict not definitive without GC", ex.Name, m)
			}
			if !rep.Member {
				if len(rep.Violations) == 0 {
					t.Errorf("%s under %v: non-member without violations", ex.Name, m)
				}
				if rep.Final != nil && off.Explain != nil && rep.Final.Axiom != off.Explain.Axiom {
					t.Errorf("%s under %v: final axiom %q, offline %q",
						ex.Name, m, rep.Final.Axiom, off.Explain.Axiom)
				}
			}
		}
	}
}

// TestDifferentialTestdata streams the repository's example history
// files and compares verdicts with the offline certifier.
func TestDifferentialTestdata(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"writeskew_history.json", "longfork_history.json"} {
		f, err := os.Open(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		h, err := histio.DecodeHistory(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range allModels {
			off := offlineCertify(t, h, m)
			rep := streamHistory(t, h, Config{Model: m})
			if rep.Member != off.Member {
				t.Errorf("%s under %v: monitor member = %v, offline = %v",
					name, m, rep.Member, off.Member)
			}
		}
	}
}

// TestDifferentialRandom checks monitor/offline agreement on seeded
// random histories — both the unconstrained generator (mostly
// non-members, small value domains forcing duplicate-value branching)
// and the plausible generator (mostly members, unique values).
func TestDifferentialRandom(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("differential sweep")
	}
	cfg := workload.RandomConfig{Sessions: 3, TxPerSession: 2, OpsPerTx: 3, Objects: 2, Values: 3}
	for i := 0; i < 60; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		h := workload.RandomHistory(rng, cfg)
		if i%2 == 1 {
			h = workload.RandomPlausibleHistory(rng, cfg)
		}
		m := allModels[i%len(allModels)]
		off := offlineCertify(t, h, m)
		rep := streamHistory(t, h, Config{Model: m})
		if rep.Member != off.Member {
			t.Errorf("seed %d under %v: monitor member = %v, offline = %v",
				i, m, rep.Member, off.Member)
		}
		if !rep.Definitive {
			t.Errorf("seed %d under %v: verdict not definitive without GC", i, m)
		}
	}
}

// TestOnlineViolationLostUpdate checks that the lost-update anomaly
// is reported at the exact commit that completes it, with a
// NOCONFLICT explanation and the violation callback fired.
func TestOnlineViolationLostUpdate(t *testing.T) {
	t.Parallel()
	var called []Violation
	mon := New(Config{Model: depgraph.SI, OnViolation: func(v Violation) { called = append(called, v) }})
	var verdicts []*Verdict
	for _, ev := range histio.HistoryToEvents(workload.LostUpdate().History) {
		if v := mon.Ingest(ev); v != nil {
			verdicts = append(verdicts, v)
		}
	}
	// Commits: init (absorbed), T1, T2. The violation completes at T2.
	if len(verdicts) != 3 {
		t.Fatalf("verdicts = %d, want 3", len(verdicts))
	}
	if !verdicts[0].Member || !verdicts[1].Member {
		t.Errorf("init/T1 verdicts = %v/%v, want member", verdicts[0].Member, verdicts[1].Member)
	}
	last := verdicts[2]
	if last.Member || last.Violation == nil {
		t.Fatalf("T2 verdict member = %v, violation = %v", last.Member, last.Violation)
	}
	if last.Txn != "T2" {
		t.Errorf("violating txn = %q, want T2", last.Txn)
	}
	if !strings.HasPrefix(last.Violation.Axiom, "NOCONFLICT") {
		t.Errorf("axiom = %q, want NOCONFLICT", last.Violation.Axiom)
	}
	if !last.Violation.Definitive {
		t.Error("lost update with unique values should be definitive")
	}
	if last.Violation.Cycle == "" {
		t.Error("violation carries no witness cycle")
	}
	if len(called) != 1 {
		t.Errorf("OnViolation called %d times, want 1", len(called))
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Member {
		t.Error("final report claims member")
	}
	if s := rep.Violations[0].String(); !strings.Contains(s, "NOCONFLICT") || !strings.Contains(s, "T2") {
		t.Errorf("violation string %q lacks axiom or txn", s)
	}
}

// TestPendingReadResolution streams a reader whose writer commits
// later: the read parks pending and resolves at the writer's commit,
// and the final verdict is a member.
func TestPendingReadResolution(t *testing.T) {
	t.Parallel()
	mon := New(Config{Model: depgraph.SI})
	evs := []eventlog.Event{
		{Seq: 1, Kind: eventlog.Begin, Session: "b", TxID: "b#1"},
		{Seq: 2, Kind: eventlog.Write, Session: "b", TxID: "b#1", Obj: "x", Val: 7},
		{Seq: 3, Kind: eventlog.Begin, Session: "a", TxID: "a#1"},
		{Seq: 4, Kind: eventlog.Read, Session: "a", TxID: "a#1", Obj: "x", Val: 7},
		{Seq: 5, Kind: eventlog.Commit, Session: "a", TxID: "a#1", Name: "A"},
		{Seq: 6, Kind: eventlog.Commit, Session: "b", TxID: "b#1", Name: "B"},
	}
	var verdicts []*Verdict
	for _, ev := range evs {
		if v := mon.Ingest(ev); v != nil {
			verdicts = append(verdicts, v)
		}
	}
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %d, want 2", len(verdicts))
	}
	if verdicts[0].Pending != 1 {
		t.Errorf("after reader commit pending = %d, want 1", verdicts[0].Pending)
	}
	if verdicts[1].Pending != 0 {
		t.Errorf("after writer commit pending = %d, want 0", verdicts[1].Pending)
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Member || rep.Pending != 0 {
		t.Errorf("report member/pending = %v/%d, want true/0", rep.Member, rep.Pending)
	}
}

// TestUnresolvedPendingRejectedAtFinish: a read of a value nobody
// ever writes passes the optimistic per-commit check but fails the
// authoritative end-of-stream certification (EXT).
func TestUnresolvedPendingRejectedAtFinish(t *testing.T) {
	t.Parallel()
	mon := New(Config{Model: depgraph.SI})
	evs := []eventlog.Event{
		{Seq: 1, Kind: eventlog.Begin, Session: "a", TxID: "a#1"},
		{Seq: 2, Kind: eventlog.Read, Session: "a", TxID: "a#1", Obj: "x", Val: 41},
		{Seq: 3, Kind: eventlog.Commit, Session: "a", TxID: "a#1", Name: "A"},
	}
	for _, ev := range evs {
		mon.Ingest(ev)
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Member {
		t.Fatal("phantom read accepted")
	}
	if rep.Pending != 1 {
		t.Errorf("pending = %d, want 1", rep.Pending)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation recorded")
	}
	if v := rep.Violations[0]; v.Definitive {
		t.Error("verdict with pending reads must not be definitive")
	}
}

// TestAbortedAndConflictedTransactionsIgnored: only commits reach the
// window; aborts and conflicts discard their buffered operations.
func TestAbortedAndConflictedTransactionsIgnored(t *testing.T) {
	t.Parallel()
	mon := New(Config{Model: depgraph.SI})
	evs := []eventlog.Event{
		{Seq: 1, Kind: eventlog.Begin, Session: "a", TxID: "a#1"},
		{Seq: 2, Kind: eventlog.Write, Session: "a", TxID: "a#1", Obj: "x", Val: 1},
		{Seq: 3, Kind: eventlog.Conflict, Session: "a", TxID: "a#1"},
		{Seq: 4, Kind: eventlog.Begin, Session: "a", TxID: "a#2"},
		{Seq: 5, Kind: eventlog.Write, Session: "a", TxID: "a#2", Obj: "x", Val: 2},
		{Seq: 6, Kind: eventlog.Abort, Session: "a", TxID: "a#2"},
		{Seq: 7, Kind: eventlog.Begin, Session: "a", TxID: "a#3"},
		{Seq: 8, Kind: eventlog.Write, Session: "a", TxID: "a#3", Obj: "x", Val: 3},
		{Seq: 9, Kind: eventlog.Commit, Session: "a", TxID: "a#3", Name: "T"},
	}
	for _, ev := range evs {
		mon.Ingest(ev)
	}
	if mon.Window() != 1 {
		t.Errorf("window = %d, want 1 (aborted attempts leaked in)", mon.Window())
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Member || rep.Commits != 1 {
		t.Errorf("member/commits = %v/%d, want true/1", rep.Member, rep.Commits)
	}
}

// TestBoundedWindowGC streams 10k read-modify-write transactions
// with a 64-transaction window: memory stays bounded (the window
// gauge returns to the bound), nearly everything is collapsed, and
// the verdict remains member — the acceptance criterion for the
// monitor's GC.
func TestBoundedWindowGC(t *testing.T) {
	t.Parallel()
	// The window stays under the checker's 64-writers-per-object
	// bound so the end-of-stream certification can run.
	const n, window = 10000, 32
	reg := obs.NewRegistry()
	mon := New(Config{Model: depgraph.SI, Window: window, Metrics: reg})
	seq := int64(0)
	next := func() int64 { seq++; return seq }
	for i := 1; i <= n; i++ {
		txid := fmt.Sprintf("s#%d", i)
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Begin, Session: "s", TxID: txid})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Read, Session: "s", TxID: txid, Obj: "x", Val: model.Value(i - 1)})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Write, Session: "s", TxID: txid, Obj: "x", Val: model.Value(i)})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Commit, Session: "s", TxID: txid, Name: fmt.Sprintf("T%d", i)})
		if w := mon.Window(); w > window+1 {
			t.Fatalf("after txn %d window = %d, exceeds bound %d", i, w, window)
		}
	}
	if g := reg.Gauge("monitor_window_txns", obs.L("model", "SI")).Value(); g > window {
		t.Errorf("window gauge = %d, want <= %d", g, window)
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Member {
		t.Error("clean serial stream rejected")
	}
	if !rep.Definitive {
		t.Error("member verdict after GC should stay definitive (one-sided)")
	}
	if rep.GCd != n-window {
		t.Errorf("GCd = %d, want %d", rep.GCd, n-window)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("violations = %v", rep.Violations)
	}
}

// TestGCPreservesViolationDetection: an anomaly whose transactions
// all sit inside the live window is still caught after thousands of
// collapsed predecessors.
func TestGCPreservesViolationDetection(t *testing.T) {
	t.Parallel()
	const warmup, window = 500, 32
	mon := New(Config{Model: depgraph.SI, Window: window})
	seq := int64(0)
	next := func() int64 { seq++; return seq }
	for i := 1; i <= warmup; i++ {
		txid := fmt.Sprintf("w#%d", i)
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Begin, Session: "w", TxID: txid})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Write, Session: "w", TxID: txid, Obj: "y", Val: model.Value(i)})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Commit, Session: "w", TxID: txid, Name: fmt.Sprintf("W%d", i)})
	}
	// A lost update on x by two fresh sessions, inside the window.
	for _, s := range []string{"a", "b"} {
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Begin, Session: s, TxID: s + "#1"})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Read, Session: s, TxID: s + "#1", Obj: "x", Val: 0})
	}
	mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Write, Session: "a", TxID: "a#1", Obj: "x", Val: 100})
	mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Write, Session: "b", TxID: "b#1", Obj: "x", Val: 200})
	var verdicts []*Verdict
	if v := mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Commit, Session: "a", TxID: "a#1", Name: "A"}); v != nil {
		verdicts = append(verdicts, v)
	}
	if v := mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Commit, Session: "b", TxID: "b#1", Name: "B"}); v != nil {
		verdicts = append(verdicts, v)
	}
	if len(verdicts) != 2 || verdicts[0].Violation != nil || verdicts[1].Violation == nil {
		t.Fatalf("expected the violation at B's commit; verdicts = %+v", verdicts)
	}
	if verdicts[1].Violation.Definitive {
		t.Error("post-GC violation must not claim definitiveness")
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Member {
		t.Error("final report claims member despite lost update")
	}
}

// TestStaleReadBeyondWindow: a read of a value the GC already
// collapsed past cannot be attributed and yields a conservative
// (non-definitive) rejection.
func TestStaleReadBeyondWindow(t *testing.T) {
	t.Parallel()
	const n, window = 200, 8
	mon := New(Config{Model: depgraph.SI, Window: window})
	seq := int64(0)
	next := func() int64 { seq++; return seq }
	for i := 1; i <= n; i++ {
		txid := fmt.Sprintf("s#%d", i)
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Begin, Session: "s", TxID: txid})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Write, Session: "s", TxID: txid, Obj: "x", Val: model.Value(i)})
		mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Commit, Session: "s", TxID: txid, Name: fmt.Sprintf("T%d", i)})
	}
	// Read x = 1: written n-1 transactions ago, long collapsed.
	mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Begin, Session: "r", TxID: "r#1"})
	mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Read, Session: "r", TxID: "r#1", Obj: "x", Val: 1})
	v := mon.Ingest(eventlog.Event{Seq: next(), Kind: eventlog.Commit, Session: "r", TxID: "r#1", Name: "R"})
	if v == nil || v.Pending != 1 {
		t.Fatalf("stale read not pending: %+v", v)
	}
	rep, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Member {
		t.Error("stale read beyond the window accepted")
	}
	if rep.Definitive {
		t.Error("post-GC rejection must not be definitive")
	}
}

// TestMonitorMetrics checks the obs series a dashboard would scrape.
func TestMonitorMetrics(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	rep := streamHistory(t, workload.WriteSkew().History, Config{Model: depgraph.SI, Metrics: reg})
	lbl := obs.L("model", "SI")
	events := reg.Counter("monitor_events_ingested_total", lbl).Value()
	commits := reg.Counter("monitor_commits_total", lbl).Value()
	if events != rep.Events || events == 0 {
		t.Errorf("events counter = %d, report %d", events, rep.Events)
	}
	if commits != rep.Commits || commits == 0 {
		t.Errorf("commits counter = %d, report %d", commits, rep.Commits)
	}
	if viol := reg.Counter("monitor_violations_total", lbl).Value(); viol != int64(len(rep.Violations)) {
		t.Errorf("violations counter = %d, report %d", viol, len(rep.Violations))
	}
}

// TestIngestAfterFinishIgnored pins Finish's idempotence.
func TestIngestAfterFinishIgnored(t *testing.T) {
	t.Parallel()
	mon := New(Config{Model: depgraph.SI})
	rep1, err := mon.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Member || !rep1.Definitive {
		t.Errorf("empty stream report = %+v", rep1)
	}
	if v := mon.Ingest(eventlog.Event{Seq: 1, Kind: eventlog.Begin, Session: "s", TxID: "s#1"}); v != nil {
		t.Error("ingest after finish returned a verdict")
	}
	rep2, _ := mon.Finish()
	if rep1 != rep2 {
		t.Error("Finish not idempotent")
	}
}

// TestWitnessAdoptionRecovers pins the fast-path recovery after a
// duplicate-value misattribution. T1 and T2 both write x=1 and T3 (in
// T2's session) reads x=1: value tracing attributes the read to T1,
// the first writer, so the arrival candidate carries a spurious
// RW(T3, T2) against SO(T2, T3) and fails — while the window is a
// member (the read belongs to T2). The slow path certifies once and
// its witness must be adopted: exactly one recertification, and GC
// must keep running over the following traffic.
func TestWitnessAdoptionRecovers(t *testing.T) {
	t.Parallel()
	sessions := []model.Session{
		{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
		}},
		{ID: "s2", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Write("x", 1)),
			model.NewTransaction("T3", model.Read("x", 1)),
		}},
	}
	tail := model.Session{ID: "s3"}
	for i := 0; i < 40; i++ {
		tail.Transactions = append(tail.Transactions,
			model.NewTransaction(fmt.Sprintf("W%d", i), model.Write("y", model.Value(100+i))))
	}
	sessions = append(sessions, tail)
	h := model.NewHistory(sessions...)

	off := offlineCertify(t, h, depgraph.SI)
	if !off.Member {
		t.Fatal("history must be an SI member offline")
	}
	rep := streamHistory(t, h, Config{Model: depgraph.SI, Window: 8})
	if !rep.Member {
		t.Fatalf("monitor rejected a member: %+v", rep.Violations)
	}
	// One in-stream recertification plus Finish's authoritative
	// end-of-stream pass; anything more means adoption failed and the
	// fast path kept recertifying.
	if rep.Rechecks != 2 {
		t.Errorf("recertifications = %d, want exactly 2 (witness adoption must restore the fast path)", rep.Rechecks)
	}
	if rep.GCd == 0 {
		t.Error("no transactions collapsed: GC stayed blocked after the recertification")
	}
}

// TestWitnessAdoptionDifferential re-runs the differential comparison
// on histories engineered to hit the adoption path: duplicated values
// across sessions followed by further traffic, with and without a
// window, across all models.
func TestWitnessAdoptionDifferential(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		h := workload.RandomHistory(rng, workload.RandomConfig{
			Sessions: 3, TxPerSession: 3, OpsPerTx: 2, Objects: 2, Values: 2,
			ReadFraction: 500,
		})
		m := allModels[i%len(allModels)]
		off := offlineCertify(t, h, m)
		rep := streamHistory(t, h, Config{Model: m})
		if rep.Member != off.Member {
			t.Errorf("seed %d under %v: monitor member = %v, offline = %v", i, m, rep.Member, off.Member)
		}
	}
}
