// Package monitor certifies a live stream of transactional events
// against a consistency model, online. It is the streaming counterpart
// of package check: where check.Certify inspects a complete history,
// the monitor consumes begin/read/write/commit/abort events as they
// happen (from an eventlog.Recorder dump or an NDJSON tail), maintains
// an incremental dependency graph over a sliding window of committed
// transactions, and reports violations as soon as a commit makes the
// window inconsistent.
//
// # Fast path and slow path
//
// Per commit, the monitor extends a transitively-closed base relation
// B = SO ∪ WR ∪ WW (relation.Closure) with the new transaction's
// edges, derives anti-dependencies against per-object version chains,
// and re-tests the model's composite-acyclicity formula — the same
// formulas depgraph.Builder evaluates, applied to the one candidate
// graph induced by arrival order (WW ordered by commit arrival, WR
// resolved by value traceability). If that candidate satisfies the
// model the window is a member — the candidate is an existential
// witness, Theorems 8/9/21 need nothing more — and the commit costs
// one sparse compose, no search. Only when the arrival candidate
// fails does the monitor fall back to check.Certify on the assembled
// window history, which searches every candidate extension and, on a
// negative verdict, yields the witness cycle for the report. A
// positive slow-path verdict is adopted: the carrier is rebuilt from
// the certified witness graph, so the fast path resumes from a valid
// candidate instead of recertifying every subsequent commit.
//
// Anti-dependencies use immediate chain successors only: RW(r, s) is
// recorded just for the writer s directly following, in the version
// chain, the version r read. Because every composite formula closes
// over B before or after the RW step, a hop r→s followed by the WW
// chain inside B reaches everything the transitive RW would, so the
// acyclicity verdicts are unchanged while edge maintenance stays
// constant per read.
//
// # Window collapse (GC)
//
// With Config.Window > 0 the monitor bounds memory by collapsing the
// oldest committed transactions into a frontier of per-object final
// values — the stable-prefix reading of the paper's PREFIX axiom:
// once a prefix is certified and no dependency edge can re-enter it,
// its verdict cannot be invalidated by later transactions, so the
// prefix reduces to the last value it installed per object. The
// collapse is validated first (collapseOK); reads that would have
// needed a collapsed non-final version stay pending and surface as a
// conservative rejection. After any collapse the monitor keeps a
// one-sided guarantee: a "member" verdict still implies the full
// stream is a member, while rejections are flagged non-definitive.
package monitor

import (
	"fmt"
	"sort"
	"time"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/relation"
)

// Config parameterises a Monitor.
type Config struct {
	// Model is the consistency model to certify against. Zero means
	// depgraph.SI.
	Model depgraph.Model
	// Window bounds the number of committed transactions kept live.
	// Non-positive keeps every transaction (exact offline agreement,
	// unbounded memory).
	Window int
	// Budget bounds each slow-path certification, as check.Options.
	Budget int
	// Parallelism is passed to slow-path certifications. Non-positive
	// means 1: the monitor runs on the ingest goroutine and the
	// search stays sequential unless the caller asks otherwise.
	Parallelism int
	// InitValue is the value every object holds before any write;
	// reads of it resolve to the (virtual) init transaction.
	InitValue model.Value
	// Metrics receives monitor counters and gauges. Nil disables.
	Metrics *obs.Registry
	// OnViolation, when set, is called synchronously for each
	// violation as it is detected.
	OnViolation func(Violation)

	// now stubs time.Now in tests.
	now func() time.Time
}

// Violation is one detected (or suspected) anomaly.
type Violation struct {
	// Seq is the event sequence number of the commit that revealed
	// it (0 for the end-of-stream certification).
	Seq int64
	// Txn is the committing transaction's id.
	Txn string
	// Model the verdict is about.
	Model depgraph.Model
	// Axiom names the violated axiom group, as check.Explanation.
	Axiom string
	// Cycle renders the witnessing forbidden cycle, when one exists,
	// and Edges is its structured form.
	Cycle string
	Edges []depgraph.Edge
	// Detail carries free-text context.
	Detail string
	// Definitive reports whether the verdict necessarily extends to
	// the full stream: true only when every read resolved to a
	// unique writer (no pending reads, no duplicate values) and no
	// window collapse has discarded context.
	Definitive bool
}

func (v Violation) String() string {
	verdict := "possible violation"
	if v.Definitive {
		verdict = "violation"
	}
	s := fmt.Sprintf("%s of %s at commit %s (event %d): %s", verdict, v.Model, v.Txn, v.Seq, v.Axiom)
	if v.Cycle != "" {
		s += ": " + v.Cycle
	}
	if v.Detail != "" {
		s += " — " + v.Detail
	}
	return s
}

// Verdict is the per-commit answer from Ingest.
type Verdict struct {
	// Seq and Txn identify the commit.
	Seq int64
	Txn string
	// Member reports whether the live window (plus frontier) is
	// still allowed by the model. Reads whose writer has not yet
	// committed are held pending and counted optimistically; the
	// Finish certification settles them.
	Member bool
	// Checked reports that this commit triggered a slow-path
	// certification (the fast arrival-order candidate failed).
	Checked bool
	// Violation is non-nil when this commit revealed an anomaly.
	Violation *Violation
	// Pending and Window snapshot the monitor state after the
	// commit.
	Pending int
	Window  int
}

// Report is the end-of-stream summary from Finish.
type Report struct {
	Model depgraph.Model
	// Member is the final verdict for the live window. When GCd is
	// zero it is exactly check.Certify's verdict on the assembled
	// history; after collapses it stays sound one-sidedly (Member
	// true still implies the full stream is a member).
	Member bool
	// Definitive reports whether Member is exact for the full
	// stream (no collapse happened, or the verdict is positive).
	Definitive bool
	Events     int64
	Commits    int64
	GCd        int64
	Pending    int
	DupVals    bool
	Rechecks   int64
	// Violations lists every anomaly reported during the stream.
	Violations []Violation
	// Final is the end-of-stream certification's explanation when it
	// rejected the window.
	Final *check.Explanation
}

// winTx is one committed transaction in the live window.
type winTx struct {
	id      string
	session string
	tx      model.Transaction
	seq     int64
	idx     int // carrier index; 0 is the init/frontier transaction
	// prevSame links the previous committed transaction of the same
	// session still in the window (nil at the window edge).
	prevSame *winTx
	// reads records how each external read resolved (nil writer =
	// init/frontier); rebuilt on every replay.
	reads []resolvedRead
}

type resolvedRead struct {
	obj    model.Obj
	val    model.Value
	writer *winTx
}

type pendingRead struct {
	reader *winTx
	obj    model.Obj
	val    model.Value
}

// Monitor is an online certifier. It is not safe for concurrent use;
// feed it from one goroutine (an eventlog merge or NDJSON tail is
// already a serial stream).
type Monitor struct {
	cfg   Config
	model depgraph.Model

	open map[string][]model.Op // in-flight transactions by session+NUL+txid

	win      []*winTx
	sessions []string // first-seen order, for deterministic window histories
	sessTxs  map[string][]*winTx
	sessLast map[string]*winTx
	frontier map[model.Obj]model.Value
	objs     map[model.Obj]bool
	// strictInit is set when the stream's first commit is the
	// history's own init transaction: it is absorbed into the
	// frontier, and implicit reads of InitValue on objects it did
	// not write no longer resolve.
	strictInit bool
	sawCommit  bool

	// Incremental graph state over carrier indices [0, cap).
	cap        int
	cl         *relation.Closure
	so         *relation.Rel
	wrAll      *relation.Rel
	rw         *relation.Rel
	s1, s2, s3 *relation.Rel
	valueIdx   map[model.Obj]map[model.Value]*winTx
	chain      map[model.Obj][]*winTx
	curReaders map[model.Obj][]*winTx
	pending    []pendingRead

	violations []Violation
	dupVals    bool
	tainted    bool // a slow-path check rejected; stop re-searching
	fastOK     bool // the arrival candidate currently satisfies the model
	err        error
	report     *Report

	nEvents, nCommits, nGCd, nRechecks int64

	cEvents, cCommits, cViol, cGC, cRecheck *obs.Counter
	gWindow, gPending                       *obs.Gauge
	hLag                                    *obs.Histogram
}

// New returns a monitor for the given configuration.
func New(cfg Config) *Monitor {
	if cfg.Model == depgraph.ModelInvalid {
		cfg.Model = depgraph.SI
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	m := &Monitor{
		cfg:      cfg,
		model:    cfg.Model,
		open:     make(map[string][]model.Op),
		sessTxs:  make(map[string][]*winTx),
		sessLast: make(map[string]*winTx),
		frontier: make(map[model.Obj]model.Value),
		objs:     make(map[model.Obj]bool),
		fastOK:   true,
	}
	lbl := obs.L("model", cfg.Model.String())
	reg := cfg.Metrics
	m.cEvents = reg.Counter("monitor_events_ingested_total", lbl)
	m.cCommits = reg.Counter("monitor_commits_total", lbl)
	m.cViol = reg.Counter("monitor_violations_total", lbl)
	m.cGC = reg.Counter("monitor_gc_txns_total", lbl)
	m.cRecheck = reg.Counter("monitor_rechecks_total", lbl)
	m.gWindow = reg.Gauge("monitor_window_txns", lbl)
	m.gPending = reg.Gauge("monitor_pending_reads", lbl)
	m.hLag = reg.Histogram("monitor_ingest_lag_ns", lbl)
	initial := 16
	if cfg.Window > 0 && cfg.Window+2 > initial {
		initial = cfg.Window + 2
	}
	m.rebuild(initial)
	return m
}

// Ingest consumes one event. It returns a non-nil verdict for every
// commit of a non-empty transaction, nil otherwise. After Finish has
// been called further events are ignored.
func (m *Monitor) Ingest(ev eventlog.Event) *Verdict {
	if m.report != nil {
		return nil
	}
	m.nEvents++
	m.cEvents.Inc()
	if ev.TS > 0 {
		if lag := m.cfg.now().UnixNano() - ev.TS; lag > 0 {
			m.hLag.Observe(lag)
		} else {
			m.hLag.Observe(0)
		}
	}
	key := ev.Session + "\x00" + ev.TxID
	switch ev.Kind {
	case eventlog.Begin:
		if _, ok := m.open[key]; !ok {
			m.open[key] = nil
		}
	case eventlog.Read:
		m.open[key] = append(m.open[key], model.Read(ev.Obj, ev.Val))
	case eventlog.Write:
		m.open[key] = append(m.open[key], model.Write(ev.Obj, ev.Val))
	case eventlog.Abort, eventlog.Conflict:
		delete(m.open, key)
	case eventlog.Commit:
		ops := m.open[key]
		delete(m.open, key)
		return m.processCommit(ev, ops)
	}
	return nil
}

// Violations returns the anomalies reported so far.
func (m *Monitor) Violations() []Violation { return m.violations }

// Window returns the number of committed transactions currently live.
func (m *Monitor) Window() int { return len(m.win) }

// processCommit folds one committed transaction into the live graph
// and re-certifies.
func (m *Monitor) processCommit(ev eventlog.Event, ops []model.Op) *Verdict {
	m.nCommits++
	m.cCommits.Inc()
	name := ev.Name
	if name == "" {
		name = ev.TxID
	}
	first := !m.sawCommit
	m.sawCommit = true
	if len(ops) == 0 {
		return &Verdict{Seq: ev.Seq, Txn: name, Member: m.memberNow(), Pending: len(m.pending), Window: len(m.win)}
	}
	if first && name == model.InitTransactionID {
		// The stream carries the history's own init transaction:
		// absorb its writes as the frontier instead of occupying a
		// window slot, mirroring how check pins transaction 0.
		tx := model.NewTransaction(name, ops...)
		for _, x := range tx.WriteSet() {
			v, _ := tx.FinalWrite(x)
			m.frontier[x] = v
			m.objs[x] = true
		}
		m.strictInit = true
		return &Verdict{Seq: ev.Seq, Txn: name, Member: true, Window: len(m.win)}
	}

	if len(m.win)+2 > m.cap {
		m.grow(len(m.win) + 2)
	}
	t := &winTx{id: name, session: ev.Session, tx: model.NewTransaction(name, ops...), seq: ev.Seq}
	t.prevSame = m.sessLast[ev.Session]
	m.sessLast[ev.Session] = t
	if _, ok := m.sessTxs[ev.Session]; !ok {
		m.sessions = append(m.sessions, ev.Session)
	}
	m.sessTxs[ev.Session] = append(m.sessTxs[ev.Session], t)
	m.win = append(m.win, t)
	t.idx = len(m.win)
	m.applyTx(t)

	v := &Verdict{Seq: ev.Seq, Txn: name}
	m.fastOK = m.fastCheck()
	switch {
	case m.tainted:
		v.Member = false
	case m.fastOK:
		v.Member = true
	default:
		// The arrival-order candidate fails; search all candidates.
		v.Checked = true
		res := m.certifyWindow()
		if res == nil {
			v.Member = false // budget exhausted; m.err carries why
		} else if res.Member {
			v.Member = true
			if res.Graph != nil {
				m.adoptWitness(res.Graph)
				m.fastOK = m.fastCheck()
			}
		} else {
			m.tainted = true
			viol := m.violationFrom(ev.Seq, name, res.Explain)
			m.violations = append(m.violations, viol)
			m.cViol.Inc()
			if m.cfg.OnViolation != nil {
				m.cfg.OnViolation(viol)
			}
			v.Violation = &viol
		}
	}
	m.maybeGC()
	v.Pending = len(m.pending)
	v.Window = len(m.win)
	m.gWindow.Set(int64(len(m.win)))
	m.gPending.Set(int64(len(m.pending)))
	return v
}

func (m *Monitor) memberNow() bool { return m.fastOK && !m.tainted }

// applyTx adds t's session, read and write dependencies to the
// incremental state. It is replay-safe: t.reads is rebuilt.
func (m *Monitor) applyTx(t *winTx) {
	t.reads = t.reads[:0]
	// The so relation carries the full transitive session order (the
	// PC formula composes with it directly); the closure only needs
	// the immediate predecessor edge, transitivity is its job. GSI
	// drops SO from the base relation altogether (Theorem 21's
	// GraphSI variant without session guarantees).
	for p := t.prevSame; p != nil; p = p.prevSame {
		m.so.Add(p.idx, t.idx)
	}
	if t.prevSame != nil && m.model != depgraph.GSI {
		m.cl.AddEdge(t.prevSame.idx, t.idx)
	}
	for _, x := range t.tx.Objects() {
		v, ok := t.tx.ReadsBeforeWrites(x)
		if !ok {
			continue // internal read, satisfied by t's own write
		}
		m.objs[x] = true
		m.resolveRead(t, x, v)
	}
	for _, x := range t.tx.WriteSet() {
		v, _ := t.tx.FinalWrite(x)
		m.objs[x] = true
		m.applyWrite(t, x, v)
	}
}

// resolveRead attributes an external read (x, v) to its writer, or
// parks it pending until a matching writer commits.
func (m *Monitor) resolveRead(t *winTx, x model.Obj, v model.Value) {
	if w, ok := m.valueIdx[x][v]; ok {
		m.linkRead(t, x, v, w)
		return
	}
	if fv, ok := m.frontier[x]; ok {
		if fv == v {
			m.linkRead(t, x, v, nil)
			return
		}
		// The frontier overwrote whatever wrote v; fall through to
		// pending (a conservative EXT rejection if never resolved).
	} else if !m.strictInit && v == m.cfg.InitValue {
		m.linkRead(t, x, v, nil) // virtual init wrote v
		return
	}
	m.pending = append(m.pending, pendingRead{reader: t, obj: x, val: v})
}

// linkRead records reader t of version (x, v) written by w (nil for
// the init/frontier transaction): a WR edge into the base relation,
// plus the immediate-successor anti-dependency when the version has
// already been overwritten.
func (m *Monitor) linkRead(t *winTx, x model.Obj, v model.Value, w *winTx) {
	wi := 0
	if w != nil {
		wi = w.idx
	}
	t.reads = append(t.reads, resolvedRead{obj: x, val: v, writer: w})
	m.wrAll.Add(wi, t.idx)
	m.cl.AddEdge(wi, t.idx)
	ch := m.chain[x]
	var last *winTx
	if len(ch) > 0 {
		last = ch[len(ch)-1]
	}
	if w == last {
		m.curReaders[x] = append(m.curReaders[x], t)
		return
	}
	succ := ch[0]
	if w != nil {
		for j, c := range ch {
			if c == w {
				succ = ch[j+1]
				break
			}
		}
	}
	if succ != t {
		m.rw.Add(t.idx, succ.idx)
	}
}

// applyWrite appends t to x's version chain: a WW edge from the
// previous version, anti-dependencies from its readers, and
// resolution of any reads waiting for this value.
func (m *Monitor) applyWrite(t *winTx, x model.Obj, v model.Value) {
	if byVal, ok := m.valueIdx[x]; ok {
		if _, dup := byVal[v]; dup {
			m.dupVals = true
		} else {
			byVal[v] = t
		}
	} else {
		m.valueIdx[x] = map[model.Value]*winTx{v: t}
	}
	// Value collisions with the frontier or the virtual init make WR
	// resolution ambiguous: verdicts stay sound (the slow path
	// searches all attributions) but lose definitiveness.
	if fv, ok := m.frontier[x]; ok {
		if fv == v {
			m.dupVals = true
		}
	} else if !m.strictInit && v == m.cfg.InitValue {
		m.dupVals = true
	}
	ch := m.chain[x]
	prev := 0
	if len(ch) > 0 {
		prev = ch[len(ch)-1].idx
	}
	m.cl.AddEdge(prev, t.idx)
	for _, r := range m.curReaders[x] {
		if r != t {
			m.rw.Add(r.idx, t.idx)
		}
	}
	m.curReaders[x] = nil
	m.chain[x] = append(ch, t)
	if len(m.pending) > 0 {
		kept := m.pending[:0]
		for _, p := range m.pending {
			if p.obj == x && p.val == v && p.reader != t {
				m.linkRead(p.reader, x, v, t)
			} else {
				kept = append(kept, p)
			}
		}
		m.pending = kept
	}
}

// fastCheck tests the arrival-order candidate graph against the
// model, mirroring depgraph.Builder.InModel over the incremental
// closure.
func (m *Monitor) fastCheck() bool {
	if m.cl.HasCycle() {
		return false
	}
	switch m.model {
	case depgraph.SER:
		m.cl.ComposeMaybeInto(m.s1, m.rw)
		return m.s1.IsAcyclic()
	case depgraph.SI, depgraph.GSI:
		m.cl.ComposeInto(m.s1, m.rw)
		return m.s1.IsAcyclic()
	case depgraph.PSI:
		ok := true
		for a := 0; a < m.cap; a++ {
			m.rw.EachSuccessor(a, func(c int) {
				if ok && m.cl.Reaches(c, a) {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	case depgraph.PC:
		m.cl.ComposeMaybeInto(m.s1, m.rw)
		m.s2.CopyFrom(m.so).UnionInPlace(m.wrAll)
		return m.s3.ComposeOf(m.s1, m.s2).IsAcyclic()
	}
	return false
}

// certifyWindow runs the offline checker over the assembled window
// history. A nil result means the certification errored (budget); the
// error is kept for Finish.
func (m *Monitor) certifyWindow() *check.Result {
	m.nRechecks++
	m.cRecheck.Inc()
	h, opts := m.windowHistory()
	res, err := check.Certify(h, m.model, opts)
	if err != nil {
		if m.err == nil {
			m.err = fmt.Errorf("monitor: window certification: %w", err)
		}
		m.tainted = true
		return nil
	}
	return res
}

// windowHistory assembles the live window as a history: an init
// transaction holding the frontier (plus, without an absorbed
// in-stream init, InitValue for every other observed object),
// followed by each session's surviving transactions in commit order.
func (m *Monitor) windowHistory() (*model.History, check.Options) {
	opts := check.Options{
		InitValue:   m.cfg.InitValue,
		Budget:      m.cfg.Budget,
		Parallelism: m.cfg.Parallelism,
	}
	var objs []model.Obj
	if m.strictInit {
		for x := range m.frontier {
			objs = append(objs, x)
		}
	} else {
		for x := range m.objs {
			objs = append(objs, x)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	initOps := make([]model.Op, 0, len(objs))
	for _, x := range objs {
		v, ok := m.frontier[x]
		if !ok {
			v = m.cfg.InitValue
		}
		initOps = append(initOps, model.Write(x, v))
	}
	var sessions []model.Session
	if len(initOps) > 0 {
		opts.NoInit = true
		opts.PinInit = true
		sessions = append(sessions, model.Session{
			ID:           model.InitTransactionID,
			Transactions: []model.Transaction{model.NewTransaction(model.InitTransactionID, initOps...)},
		})
	}
	for _, sid := range m.sessions {
		txs := m.sessTxs[sid]
		if len(txs) == 0 {
			continue
		}
		sess := model.Session{ID: sid, Transactions: make([]model.Transaction, 0, len(txs))}
		for _, t := range txs {
			sess.Transactions = append(sess.Transactions, t.tx)
		}
		sessions = append(sessions, sess)
	}
	return model.NewHistory(sessions...), opts
}

// adoptWitness replaces the arrival-order candidate state with the
// witness dependency graph of a successful window certification. The
// fast path tests just one candidate extension; when duplicate values
// make it misattribute a read, that candidate fails permanently (the
// closure cannot unlearn the spurious edge) even though the window is
// a member, which would force a full search on every later commit and
// block GC — whose precondition is a passing fast state. Rebuilding
// the carrier from the certified witness restores a passing candidate
// so both recover. Reads parked pending are resolved by the witness's
// WR attribution as a side effect.
func (m *Monitor) adoptWitness(g *depgraph.Graph) {
	// History index -> window transaction, mirroring windowHistory's
	// assembly order: the synthetic init transaction first (when one
	// was emitted), then each session's survivors.
	h := g.History
	var histTx []*winTx
	if h.NumTransactions() > 0 && h.Transaction(0).ID == model.InitTransactionID {
		histTx = append(histTx, nil)
	}
	for _, sid := range m.sessions {
		histTx = append(histTx, m.sessTxs[sid]...)
	}
	histIdx := make(map[*winTx]int, len(histTx))
	for i, t := range histTx {
		if t != nil {
			histIdx[t] = i
		}
	}
	m.cl = relation.NewClosure(m.cap)
	m.wrAll = relation.New(m.cap)
	m.rw = relation.New(m.cap)
	m.valueIdx = make(map[model.Obj]map[model.Value]*winTx)
	m.chain = make(map[model.Obj][]*winTx)
	m.curReaders = make(map[model.Obj][]*winTx)
	m.pending = m.pending[:0]
	m.dupVals = false
	for _, t := range m.win {
		t.reads = t.reads[:0]
		if t.prevSame != nil && m.model != depgraph.GSI {
			m.cl.AddEdge(t.prevSame.idx, t.idx)
		}
	}
	for _, x := range g.Objects() {
		// Version chain: the window's writers of x in the witness's
		// per-object total write order (indegree within a total order
		// ranks its elements; a single writer needs no pairs).
		indeg := make(map[int]int)
		for _, p := range g.WWObj(x).Pairs() {
			indeg[p[1]]++
		}
		var chain []*winTx
		for _, t := range m.win {
			if _, ok := t.tx.FinalWrite(x); ok {
				chain = append(chain, t)
			}
		}
		sort.SliceStable(chain, func(i, j int) bool {
			return indeg[histIdx[chain[i]]] < indeg[histIdx[chain[j]]]
		})
		prev := 0
		for _, w := range chain {
			m.cl.AddEdge(prev, w.idx)
			prev = w.idx
		}
		m.chain[x] = chain
		byVal := make(map[model.Value]*winTx, len(chain))
		for _, w := range chain {
			v, _ := w.tx.FinalWrite(x)
			if _, dup := byVal[v]; dup {
				m.dupVals = true
			} else {
				byVal[v] = w
			}
			if fv, ok := m.frontier[x]; ok {
				if fv == v {
					m.dupVals = true
				}
			} else if !m.strictInit && v == m.cfg.InitValue {
				m.dupVals = true
			}
		}
		m.valueIdx[x] = byVal
		var last *winTx
		if len(chain) > 0 {
			last = chain[len(chain)-1]
		}
		for _, p := range g.WRObj(x).Pairs() {
			w, r := histTx[p[0]], histTx[p[1]]
			v, ok := r.tx.ReadsBeforeWrites(x)
			if !ok {
				continue
			}
			r.reads = append(r.reads, resolvedRead{obj: x, val: v, writer: w})
			wi := 0
			if w != nil {
				wi = w.idx
			}
			m.wrAll.Add(wi, r.idx)
			m.cl.AddEdge(wi, r.idx)
			if w == last {
				m.curReaders[x] = append(m.curReaders[x], r)
				continue
			}
			succ := chain[0]
			if w != nil {
				for j, c := range chain {
					if c == w {
						succ = chain[j+1]
						break
					}
				}
			}
			if succ != r {
				m.rw.Add(r.idx, succ.idx)
			}
		}
	}
}

func (m *Monitor) violationFrom(seq int64, txn string, e *check.Explanation) Violation {
	v := Violation{
		Seq: seq, Txn: txn, Model: m.model,
		Definitive: len(m.pending) == 0 && !m.dupVals && m.nGCd == 0,
	}
	if e != nil {
		v.Axiom = e.Axiom
		v.Detail = e.Detail
		v.Edges = e.Cycle
		if len(e.Cycle) > 0 && e.Graph != nil {
			v.Cycle = e.Graph.FormatCycle(e.Cycle)
		}
	}
	return v
}

// maybeGC collapses the oldest transactions into the frontier when
// the window exceeds its bound and the collapse is provably safe: the
// fast state is a certified member, no read is pending, and no
// dependency edge would cross back into the collapsed prefix.
func (m *Monitor) maybeGC() {
	if m.cfg.Window <= 0 || len(m.win) <= m.cfg.Window {
		return
	}
	if !m.fastOK || m.tainted || len(m.pending) > 0 {
		return
	}
	k := len(m.win) - m.cfg.Window
	for ; k > 0; k-- {
		if m.collapseOK(k) {
			break
		}
	}
	if k <= 0 {
		return
	}
	collapsed := m.win[:k]
	inPrefix := make(map[*winTx]bool, k)
	for _, t := range collapsed {
		inPrefix[t] = true
	}
	for _, t := range collapsed {
		for _, x := range t.tx.WriteSet() {
			v, _ := t.tx.FinalWrite(x)
			m.frontier[x] = v
		}
	}
	for sid, txs := range m.sessTxs {
		kept := txs[:0]
		for _, t := range txs {
			if !inPrefix[t] {
				kept = append(kept, t)
			}
		}
		m.sessTxs[sid] = kept
		if len(kept) == 0 {
			delete(m.sessLast, sid)
		}
	}
	for _, t := range m.win[k:] {
		if t.prevSame != nil && inPrefix[t.prevSame] {
			t.prevSame = nil
		}
	}
	m.win = append([]*winTx(nil), m.win[k:]...)
	m.nGCd += int64(k)
	m.cGC.Add(int64(k))
	m.rebuild(m.cap)
}

// collapseOK reports whether the k oldest window transactions can be
// collapsed without losing a dependency edge that could still matter:
//
//  1. every collapsed read resolved inside the prefix or frontier, so
//     no WR edge points from a survivor back into the prefix;
//  2. every survivor read of a prefix writer reads the value the
//     prefix leaves behind (its per-object final write), so the WR
//     edge re-targets the new frontier exactly;
//  3. no survivor read of the current frontier/init version is being
//     overwritten by the prefix.
//
// Under these conditions all remaining edges leave the prefix and
// never re-enter it, so its (already certified) verdict is stable —
// the PREFIX/Theorem 9 argument — and the prefix reduces to its final
// values.
func (m *Monitor) collapseOK(k int) bool {
	inPrefix := make(map[*winTx]bool, k)
	for _, t := range m.win[:k] {
		inPrefix[t] = true
	}
	for _, t := range m.win[:k] {
		for _, r := range t.reads {
			if r.writer != nil && !inPrefix[r.writer] {
				return false
			}
		}
	}
	lastW := make(map[model.Obj]*winTx)
	for _, t := range m.win[:k] {
		for _, x := range t.tx.WriteSet() {
			lastW[x] = t
		}
	}
	for _, t := range m.win[k:] {
		for _, r := range t.reads {
			if r.writer != nil && inPrefix[r.writer] && lastW[r.obj] != r.writer {
				return false
			}
			if r.writer == nil && lastW[r.obj] != nil {
				return false
			}
		}
	}
	return true
}

// grow enlarges the carrier and replays the window.
func (m *Monitor) grow(min int) {
	newCap := m.cap * 2
	if newCap < min {
		newCap = min
	}
	m.rebuild(newCap)
}

// rebuild resets the incremental graph state to the given carrier
// size and replays every window transaction through applyTx. Pending
// reads re-accumulate naturally during the replay.
func (m *Monitor) rebuild(newCap int) {
	m.cap = newCap
	m.cl = relation.NewClosure(newCap)
	m.so = relation.New(newCap)
	m.wrAll = relation.New(newCap)
	m.rw = relation.New(newCap)
	m.s1 = relation.New(newCap)
	m.s2 = relation.New(newCap)
	m.s3 = relation.New(newCap)
	m.valueIdx = make(map[model.Obj]map[model.Value]*winTx)
	m.chain = make(map[model.Obj][]*winTx)
	m.curReaders = make(map[model.Obj][]*winTx)
	m.pending = m.pending[:0]
	m.dupVals = false
	for i, t := range m.win {
		t.idx = i + 1
	}
	for _, t := range m.win {
		m.applyTx(t)
	}
}

// Finish runs the authoritative end-of-stream certification and
// returns the summary. It is idempotent; subsequent Ingest calls are
// ignored. The error reports a budget-exhausted certification, whose
// verdict would otherwise be silently unreliable.
func (m *Monitor) Finish() (*Report, error) {
	if m.report != nil {
		return m.report, m.err
	}
	rep := &Report{
		Model:      m.model,
		Member:     true,
		Events:     m.nEvents,
		Commits:    m.nCommits,
		GCd:        m.nGCd,
		Pending:    len(m.pending),
		DupVals:    m.dupVals,
		Violations: m.violations,
	}
	if len(m.win) > 0 && m.err == nil {
		res := m.certifyWindow()
		if res != nil {
			rep.Member = res.Member
			if !res.Member {
				rep.Final = res.Explain
				if len(m.violations) == 0 {
					viol := m.violationFrom(0, "(end of stream)", res.Explain)
					m.violations = append(m.violations, viol)
					rep.Violations = m.violations
					m.cViol.Inc()
					if m.cfg.OnViolation != nil {
						m.cfg.OnViolation(viol)
					}
				}
			}
		} else {
			rep.Member = false
		}
	} else if len(m.win) > 0 {
		rep.Member = false
	}
	rep.Rechecks = m.nRechecks
	rep.Definitive = m.err == nil && (m.nGCd == 0 || rep.Member)
	m.report = rep
	return rep, m.err
}
