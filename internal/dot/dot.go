// Package dot renders the analyser's graph structures — dependency
// graphs, abstract executions, chopping graphs and static dependency
// graphs — as Graphviz DOT documents, for visual inspection of
// anomalies, witness cycles and analysis inputs.
package dot

import (
	"fmt"
	"io"
	"strings"

	"sian/internal/chopping"
	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/robustness"
)

// quote escapes a label for DOT.
func quote(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s) + `"`
}

// txLabel renders a transaction label: its ID when present, else #i.
func txLabel(id string, i int) string {
	if id != "" {
		return id
	}
	return fmt.Sprintf("#%d", i)
}

// Graph writes a dependency graph: transactions as nodes; SO edges
// dotted, WR solid, WW bold, derived RW dashed red, each labelled with
// its object.
func Graph(w io.Writer, g *depgraph.Graph) error {
	var b strings.Builder
	b.WriteString("digraph dependencies {\n  rankdir=LR;\n  node [shape=box];\n")
	h := g.History
	for i := 0; i < h.NumTransactions(); i++ {
		t := h.Transaction(i)
		var ops []string
		for _, op := range t.Ops {
			ops = append(ops, op.String())
		}
		label := txLabel(t.ID, i)
		if len(ops) > 0 {
			label += "\n" + strings.Join(ops, "\n")
		}
		fmt.Fprintf(&b, "  n%d [label=%s];\n", i, quote(label))
	}
	for _, p := range h.SessionOrder().Pairs() {
		fmt.Fprintf(&b, "  n%d -> n%d [style=dotted, label=\"SO\"];\n", p[0], p[1])
	}
	for _, x := range g.Objects() {
		for _, p := range g.WRObj(x).Pairs() {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%s];\n", p[0], p[1], quote("WR("+string(x)+")"))
		}
		for _, p := range g.WWObj(x).Pairs() {
			fmt.Fprintf(&b, "  n%d -> n%d [style=bold, label=%s];\n", p[0], p[1], quote("WW("+string(x)+")"))
		}
		for _, p := range g.RWObj(x).Pairs() {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=red, label=%s];\n",
				p[0], p[1], quote("RW("+string(x)+")"))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Execution writes an abstract execution: VIS edges solid, CO-only
// edges (commit order not implied by visibility) grey dashed.
func Execution(w io.Writer, x *execution.Execution) error {
	var b strings.Builder
	b.WriteString("digraph execution {\n  rankdir=LR;\n  node [shape=box];\n")
	h := x.History
	for i := 0; i < h.NumTransactions(); i++ {
		fmt.Fprintf(&b, "  n%d [label=%s];\n", i, quote(txLabel(h.Transaction(i).ID, i)))
	}
	for _, p := range x.VIS.Pairs() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"VIS\"];\n", p[0], p[1])
	}
	for _, p := range x.CO.Minus(x.VIS).Pairs() {
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=grey, label=\"CO\"];\n", p[0], p[1])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ChopGraph writes a (static or dynamic) chopping graph: successor
// edges dotted, predecessor edges dotted grey, conflict edges styled
// by kind. A non-nil highlight cycle is drawn in red with penwidth 2.
func ChopGraph(w io.Writer, g *chopping.Graph, highlight chopping.Cycle) error {
	inCycle := make(map[chopping.Step]bool, len(highlight))
	for _, s := range highlight {
		inCycle[s] = true
	}
	var b strings.Builder
	b.WriteString("digraph chopping {\n  rankdir=LR;\n  node [shape=box];\n")
	for i := 0; i < g.N(); i++ {
		fmt.Fprintf(&b, "  n%d [label=%s];\n", i, quote(g.Label(i)))
	}
	for _, e := range g.Edges() {
		attrs := edgeAttrs(e.Kind)
		if inCycle[e] {
			attrs = append(attrs, "color=red", "penwidth=2")
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func edgeAttrs(k chopping.EdgeKind) []string {
	switch k {
	case chopping.KindSuccessor:
		return []string{"style=dotted", `label="S"`}
	case chopping.KindPredecessor:
		return []string{"style=dotted", "color=grey", `label="P"`}
	case chopping.KindWR:
		return []string{`label="WR"`}
	case chopping.KindWW:
		return []string{"style=bold", `label="WW"`}
	case chopping.KindRW:
		return []string{"style=dashed", `label="RW"`}
	default:
		return []string{fmt.Sprintf("label=%q", k.String())}
	}
}

// StaticDependencies writes a robustness static dependency graph.
func StaticDependencies(w io.Writer, g *robustness.StaticGraph) error {
	var b strings.Builder
	b.WriteString("digraph static {\n  rankdir=LR;\n  node [shape=box];\n")
	for i, l := range g.Labels {
		fmt.Fprintf(&b, "  n%d [label=%s];\n", i, quote(l))
	}
	emit := func(pairs [][2]int, attrs string) {
		for _, p := range pairs {
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", p[0], p[1], attrs)
		}
	}
	emit(g.SO.Pairs(), `style=dotted, label="SO"`)
	emit(g.WR.Pairs(), `label="WR"`)
	emit(g.WW.Pairs(), `style=bold, label="WW"`)
	emit(g.RW.Pairs(), `style=dashed, color=red, label="RW"`)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
