package dot

import (
	"bytes"
	"strings"
	"testing"

	"sian/internal/chopping"
	"sian/internal/core"
	"sian/internal/robustness"
	"sian/internal/workload"
)

// render runs fn into a buffer and returns the output, failing on
// error.
func render(t *testing.T, fn func(b *bytes.Buffer) error) string {
	t.Helper()
	var b bytes.Buffer
	if err := fn(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// checkDOT performs structural sanity checks on a DOT document.
func checkDOT(t *testing.T, s string, wants ...string) {
	t.Helper()
	if !strings.HasPrefix(s, "digraph ") || !strings.HasSuffix(s, "}\n") {
		t.Fatalf("not a DOT document:\n%s", s)
	}
	if strings.Count(s, "{") != strings.Count(s, "}") {
		t.Errorf("unbalanced braces:\n%s", s)
	}
	for _, w := range wants {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestGraph(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	s := render(t, func(b *bytes.Buffer) error { return Graph(b, ws.Graph) })
	checkDOT(t, s,
		"WR(acct1)", "WW(acct2)", "RW(", "style=dashed, color=red",
		"T1", "T2", "write(acct1, -40)")
}

func TestExecution(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	x, err := core.BuildExecution(ws.Graph)
	if err != nil {
		t.Fatal(err)
	}
	s := render(t, func(b *bytes.Buffer) error { return Execution(b, x) })
	checkDOT(t, s, `label="VIS"`, `label="CO"`)
}

func TestChopGraph(t *testing.T) {
	t.Parallel()
	verdict, err := chopping.CheckStatic(workload.Fig5Programs(), chopping.SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.OK {
		t.Fatal("expected critical cycle")
	}
	s := render(t, func(b *bytes.Buffer) error {
		return ChopGraph(b, verdict.Graph, verdict.Witness)
	})
	checkDOT(t, s, "color=red, penwidth=2", `label="P"`, `label="S"`, "lookupAll")
	// Without a highlight nothing is red-bold.
	s2 := render(t, func(b *bytes.Buffer) error { return ChopGraph(b, verdict.Graph, nil) })
	if strings.Contains(s2, "penwidth=2") {
		t.Error("unexpected highlight without a cycle")
	}
}

func TestStaticDependencies(t *testing.T) {
	t.Parallel()
	g := robustness.BuildStatic(workload.WriteSkewApp())
	s := render(t, func(b *bytes.Buffer) error { return StaticDependencies(b, g) })
	checkDOT(t, s, "withdraw1", "withdraw2", `label="RW"`)
}

func TestQuoting(t *testing.T) {
	t.Parallel()
	if got := quote(`a"b\c`); got != `"a\"b\\c"` {
		t.Errorf("quote = %s", got)
	}
}
