// Package model defines the history model of §2 of the paper: events,
// transactions (E, po), sessions and histories (T, SO), together with
// the derived transaction-level read/write judgements (T ⊢ read(x, n),
// T ⊢ write(x, n)), the WriteTx_x sets, the internal consistency axiom
// INT, and the splice operation of §5.
//
// Transactions inside a history are referred to by dense indices
// (0, …, len(T)-1); every relation over a history's transactions
// (session order, visibility, dependencies, …) uses those indices as
// its carrier, which lets the whole analysis pipeline share the bitset
// relations of internal/relation.
package model

import (
	"fmt"
	"sort"
	"strings"

	"sian/internal/relation"
)

// Obj identifies a shared object (the set Obj of the paper).
type Obj string

// Value is the domain of values stored in objects. The paper uses
// integers; so do we.
type Value int64

// OpKind distinguishes reads from writes.
type OpKind int

// Operation kinds. Following the style guide, the enum starts at one so
// the zero value is an invalid operation that validation rejects.
const (
	OpInvalid OpKind = iota
	OpRead
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is a single operation op(e) = read(x, n) or write(x, n).
type Op struct {
	Kind OpKind
	Obj  Obj
	Val  Value
}

// Read returns the operation read(x, n).
func Read(x Obj, n Value) Op { return Op{Kind: OpRead, Obj: x, Val: n} }

// Write returns the operation write(x, n).
func Write(x Obj, n Value) Op { return Op{Kind: OpWrite, Obj: x, Val: n} }

// String renders the operation as in the paper, e.g. "read(x, 1)".
func (o Op) String() string {
	return fmt.Sprintf("%s(%s, %d)", o.Kind, o.Obj, o.Val)
}

// Transaction is a finite, totally ordered sequence of operations
// (E, po). The program order po is the slice order. Per the paper all
// transactions considered are committed.
type Transaction struct {
	// ID is an optional client-supplied label used in diagnostics; it
	// plays no semantic role.
	ID string
	// Ops is the sequence of events in program order.
	Ops []Op
}

// NewTransaction builds a transaction from operations in program
// order.
func NewTransaction(id string, ops ...Op) Transaction {
	cp := make([]Op, len(ops))
	copy(cp, ops)
	return Transaction{ID: id, Ops: cp}
}

// String renders the transaction as "[id: op1; op2; …]".
func (t Transaction) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	if t.ID != "" {
		sb.WriteString(t.ID)
		sb.WriteString(": ")
	}
	for i, op := range t.Ops {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(op.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// ReadsBeforeWrites reports, per Definition in §2: T ⊢ read(x, n)
// holds iff the first operation on x in T is a read, and n is the
// value it returns. The boolean result is false when T does not read x
// before writing it.
func (t Transaction) ReadsBeforeWrites(x Obj) (Value, bool) {
	for _, op := range t.Ops {
		if op.Obj != x {
			continue
		}
		if op.Kind == OpRead {
			return op.Val, true
		}
		return 0, false // first access is a write
	}
	return 0, false
}

// FinalWrite reports T ⊢ write(x, n): whether T writes to x, and if
// so the last value written.
func (t Transaction) FinalWrite(x Obj) (Value, bool) {
	for i := len(t.Ops) - 1; i >= 0; i-- {
		op := t.Ops[i]
		if op.Obj == x && op.Kind == OpWrite {
			return op.Val, true
		}
	}
	return 0, false
}

// Writes reports whether the transaction writes to x at all.
func (t Transaction) Writes(x Obj) bool {
	_, ok := t.FinalWrite(x)
	return ok
}

// Reads reports whether the transaction reads x before writing it.
func (t Transaction) Reads(x Obj) bool {
	_, ok := t.ReadsBeforeWrites(x)
	return ok
}

// Objects returns the sorted set of objects accessed by the
// transaction.
func (t Transaction) Objects() []Obj {
	seen := make(map[Obj]bool)
	for _, op := range t.Ops {
		seen[op.Obj] = true
	}
	return sortedObjs(seen)
}

// ReadSet returns the sorted set of objects the transaction reads
// (anywhere, not only before writing).
func (t Transaction) ReadSet() []Obj {
	seen := make(map[Obj]bool)
	for _, op := range t.Ops {
		if op.Kind == OpRead {
			seen[op.Obj] = true
		}
	}
	return sortedObjs(seen)
}

// WriteSet returns the sorted set of objects the transaction writes.
func (t Transaction) WriteSet() []Obj {
	seen := make(map[Obj]bool)
	for _, op := range t.Ops {
		if op.Kind == OpWrite {
			seen[op.Obj] = true
		}
	}
	return sortedObjs(seen)
}

func sortedObjs(set map[Obj]bool) []Obj {
	out := make([]Obj, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInt checks the internal consistency axiom INT (Figure 1) for a
// single transaction: every read on x that is preceded in the
// transaction by an operation on x must return the value of the last
// such operation. It returns nil when the axiom holds.
func (t Transaction) CheckInt() error {
	last := make(map[Obj]Value)
	for i, op := range t.Ops {
		if op.Kind == OpInvalid {
			return fmt.Errorf("event %d: invalid operation kind", i)
		}
		if prev, ok := last[op.Obj]; ok && op.Kind == OpRead && op.Val != prev {
			return fmt.Errorf("event %d: INT violated: read(%s, %d) after the value %d",
				i, op.Obj, op.Val, prev)
		}
		last[op.Obj] = op.Val
	}
	return nil
}

// Session is an ordered sequence of transactions issued by one client
// (§2); the session order SO of a history is the union of the per-
// session orders.
type Session struct {
	// ID labels the session in diagnostics.
	ID string
	// Transactions in session order.
	Transactions []Transaction
}

// History is a pair (T, SO) per Definition 2, stored as the list of
// sessions. Transaction indices are assigned session by session, in
// session order: session 0's transactions come first, then session
// 1's, and so on.
type History struct {
	sessions []Session
	// flat[i] is the transaction with index i.
	flat []Transaction
	// sessionOf[i] is the position in sessions of transaction i's
	// session; posOf[i] its position within that session.
	sessionOf []int
	posOf     []int
}

// NewHistory builds a history from sessions. The sessions are deep-
// copied, so the caller may reuse the argument.
func NewHistory(sessions ...Session) *History {
	h := &History{}
	for _, s := range sessions {
		cp := Session{ID: s.ID, Transactions: make([]Transaction, len(s.Transactions))}
		copy(cp.Transactions, s.Transactions)
		h.sessions = append(h.sessions, cp)
	}
	h.reindex()
	return h
}

func (h *History) reindex() {
	h.flat = h.flat[:0]
	h.sessionOf = h.sessionOf[:0]
	h.posOf = h.posOf[:0]
	for si, s := range h.sessions {
		for pi, t := range s.Transactions {
			h.flat = append(h.flat, t)
			h.sessionOf = append(h.sessionOf, si)
			h.posOf = append(h.posOf, pi)
		}
	}
}

// NumTransactions returns |T|.
func (h *History) NumTransactions() int { return len(h.flat) }

// NumSessions returns the number of sessions.
func (h *History) NumSessions() int { return len(h.sessions) }

// Transaction returns the transaction with the given index.
func (h *History) Transaction(i int) Transaction { return h.flat[i] }

// Transactions returns all transactions indexed by their dense index.
// The returned slice is a copy.
func (h *History) Transactions() []Transaction {
	out := make([]Transaction, len(h.flat))
	copy(out, h.flat)
	return out
}

// Sessions returns a copy of the session list.
func (h *History) Sessions() []Session {
	out := make([]Session, len(h.sessions))
	for i, s := range h.sessions {
		cp := Session{ID: s.ID, Transactions: make([]Transaction, len(s.Transactions))}
		copy(cp.Transactions, s.Transactions)
		out[i] = cp
	}
	return out
}

// SessionIndex returns the index of the session containing transaction
// i.
func (h *History) SessionIndex(i int) int { return h.sessionOf[i] }

// SessionOrder returns SO as a relation over transaction indices:
// (i, j) ∈ SO iff i and j are in the same session and i precedes j.
// SO is transitive by construction.
func (h *History) SessionOrder() *relation.Rel {
	so := relation.New(len(h.flat))
	base := 0
	for _, s := range h.sessions {
		n := len(s.Transactions)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				so.Add(base+a, base+b)
			}
		}
		base += n
	}
	return so
}

// SameSession returns the equivalence relation ≈_H of §5 (including
// the diagonal) as a relation over transaction indices.
func (h *History) SameSession() *relation.Rel {
	eq := relation.New(len(h.flat))
	base := 0
	for _, s := range h.sessions {
		n := len(s.Transactions)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				eq.Add(base+a, base+b)
			}
		}
		base += n
	}
	return eq
}

// WriteTx returns the sorted indices of transactions that write to x
// (the set WriteTx_x).
func (h *History) WriteTx(x Obj) []int {
	var out []int
	for i, t := range h.flat {
		if t.Writes(x) {
			out = append(out, i)
		}
	}
	return out
}

// Objects returns the sorted set of objects accessed anywhere in the
// history.
func (h *History) Objects() []Obj {
	seen := make(map[Obj]bool)
	for _, t := range h.flat {
		for _, op := range t.Ops {
			seen[op.Obj] = true
		}
	}
	return sortedObjs(seen)
}

// CheckInt checks the INT axiom for every transaction and returns an
// error identifying the first violating transaction, or nil.
func (h *History) CheckInt() error {
	for i, t := range h.flat {
		if err := t.CheckInt(); err != nil {
			return fmt.Errorf("transaction %d %s: %w", i, t.ID, err)
		}
	}
	return nil
}

// Validate performs structural well-formedness checks: every operation
// kind valid, and every transaction non-empty. It does not check INT;
// use CheckInt for that.
func (h *History) Validate() error {
	for i, t := range h.flat {
		if len(t.Ops) == 0 {
			return fmt.Errorf("transaction %d %s: empty transaction", i, t.ID)
		}
		for j, op := range t.Ops {
			if op.Kind != OpRead && op.Kind != OpWrite {
				return fmt.Errorf("transaction %d %s event %d: invalid operation kind %d",
					i, t.ID, j, op.Kind)
			}
			if op.Obj == "" {
				return fmt.Errorf("transaction %d %s event %d: empty object name", i, t.ID, j)
			}
		}
	}
	return nil
}

// Splice returns splice(H) of §5: a history with one single-
// transaction session per original session, each obtained by
// concatenating the session's transactions in session order. Sessions
// that already hold a single transaction keep its ID (in particular,
// an initialisation transaction stays recognisable); genuinely spliced
// transactions are labelled "spliced:<session>".
func (h *History) Splice() *History {
	spliced := make([]Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		var ops []Op
		for _, t := range s.Transactions {
			ops = append(ops, t.Ops...)
		}
		var id string
		switch {
		case len(s.Transactions) == 1:
			id = s.Transactions[0].ID
		case s.ID == "":
			id = "spliced"
		default:
			id = "spliced:" + s.ID
		}
		spliced = append(spliced, Session{
			ID:           s.ID,
			Transactions: []Transaction{NewTransaction(id, ops...)},
		})
	}
	return NewHistory(spliced...)
}

// SplicedIndex maps a transaction index of h to the index of its
// spliced transaction in h.Splice(): the session index, since splicing
// leaves exactly one transaction per session.
func (h *History) SplicedIndex(i int) int { return h.sessionOf[i] }

// InitTransactionID is the diagnostic label of the initialisation
// transaction added by WithInit.
const InitTransactionID = "init"

// WithInit returns a copy of h extended with a new first session
// holding a single transaction that writes initVal to every object
// accessed anywhere in h. The paper's executions implicitly contain
// such a transaction ("a special transaction that writes initial
// versions of all objects", §2); the analyses make it explicit. The
// init transaction has index 0 in the returned history; every original
// transaction index shifts up by one.
func (h *History) WithInit(initVal Value) *History {
	ops := make([]Op, 0)
	for _, x := range h.Objects() {
		ops = append(ops, Write(x, initVal))
	}
	init := Session{
		ID:           InitTransactionID,
		Transactions: []Transaction{NewTransaction(InitTransactionID, ops...)},
	}
	return NewHistory(append([]Session{init}, h.Sessions()...)...)
}

// String renders the history session by session.
func (h *History) String() string {
	var sb strings.Builder
	for si, s := range h.sessions {
		if si > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "session %d", si)
		if s.ID != "" {
			fmt.Fprintf(&sb, " (%s)", s.ID)
		}
		sb.WriteString(":")
		for _, t := range s.Transactions {
			sb.WriteString(" ")
			sb.WriteString(t.String())
		}
	}
	return sb.String()
}
