package model

import (
	"strings"
	"testing"
)

func tx(id string, ops ...Op) Transaction { return NewTransaction(id, ops...) }

func TestOpConstructorsAndString(t *testing.T) {
	t.Parallel()
	r := Read("x", 3)
	if r.Kind != OpRead || r.Obj != "x" || r.Val != 3 {
		t.Errorf("Read built %+v", r)
	}
	w := Write("y", -1)
	if w.Kind != OpWrite || w.Obj != "y" || w.Val != -1 {
		t.Errorf("Write built %+v", w)
	}
	if got := r.String(); got != "read(x, 3)" {
		t.Errorf("String = %q", got)
	}
	if got := w.String(); got != "write(y, -1)" {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(OpKind(99).String(), "99") {
		t.Error("unknown kind String should include the number")
	}
}

func TestTransactionJudgements(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name     string
		tr       Transaction
		obj      Obj
		readVal  Value
		reads    bool
		writeVal Value
		writes   bool
	}{
		{
			name: "read before write",
			tr:   tx("t", Read("x", 5), Write("x", 7)),
			obj:  "x", readVal: 5, reads: true, writeVal: 7, writes: true,
		},
		{
			name: "write shadows read",
			tr:   tx("t", Write("x", 7), Read("x", 7)),
			obj:  "x", reads: false, writeVal: 7, writes: true,
		},
		{
			name: "last write wins",
			tr:   tx("t", Write("x", 1), Write("x", 2), Write("x", 3)),
			obj:  "x", reads: false, writeVal: 3, writes: true,
		},
		{
			name: "read only",
			tr:   tx("t", Read("x", 9), Read("x", 9)),
			obj:  "x", readVal: 9, reads: true, writes: false,
		},
		{
			name: "untouched object",
			tr:   tx("t", Read("y", 1)),
			obj:  "x", reads: false, writes: false,
		},
		{
			name: "first read counts",
			tr:   tx("t", Read("x", 2), Read("x", 2), Write("x", 4)),
			obj:  "x", readVal: 2, reads: true, writeVal: 4, writes: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			v, ok := tc.tr.ReadsBeforeWrites(tc.obj)
			if ok != tc.reads || (ok && v != tc.readVal) {
				t.Errorf("ReadsBeforeWrites = (%d,%v), want (%d,%v)", v, ok, tc.readVal, tc.reads)
			}
			w, ok := tc.tr.FinalWrite(tc.obj)
			if ok != tc.writes || (ok && w != tc.writeVal) {
				t.Errorf("FinalWrite = (%d,%v), want (%d,%v)", w, ok, tc.writeVal, tc.writes)
			}
			if tc.tr.Writes(tc.obj) != tc.writes {
				t.Errorf("Writes = %v", tc.tr.Writes(tc.obj))
			}
			if tc.tr.Reads(tc.obj) != tc.reads {
				t.Errorf("Reads = %v", tc.tr.Reads(tc.obj))
			}
		})
	}
}

func TestTransactionSets(t *testing.T) {
	t.Parallel()
	tr := tx("t", Read("b", 1), Write("a", 2), Read("a", 2), Write("c", 3))
	if got := tr.Objects(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Objects = %v", got)
	}
	if got := tr.ReadSet(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("ReadSet = %v", got)
	}
	if got := tr.WriteSet(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("WriteSet = %v", got)
	}
}

func TestCheckInt(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		tr   Transaction
		ok   bool
	}{
		{"consistent read after write", tx("t", Write("x", 1), Read("x", 1)), true},
		{"inconsistent read after write", tx("t", Write("x", 1), Read("x", 2)), false},
		{"consistent read after read", tx("t", Read("x", 1), Read("x", 1)), true},
		{"inconsistent read after read", tx("t", Read("x", 1), Read("x", 2)), false},
		{"different objects free", tx("t", Write("x", 1), Read("y", 2)), true},
		{"overwrite then read", tx("t", Write("x", 1), Write("x", 2), Read("x", 2)), true},
		{"invalid kind", Transaction{Ops: []Op{{}}}, false},
		{"empty", tx("t"), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.tr.CheckInt(); (err == nil) != tc.ok {
				t.Errorf("CheckInt = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func newTestHistory() *History {
	return NewHistory(
		Session{ID: "a", Transactions: []Transaction{
			tx("a0", Write("x", 1)),
			tx("a1", Read("x", 1), Write("y", 2)),
		}},
		Session{ID: "b", Transactions: []Transaction{
			tx("b0", Read("y", 2)),
		}},
	)
}

func TestHistoryIndexing(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	if h.NumTransactions() != 3 || h.NumSessions() != 2 {
		t.Fatalf("counts = %d/%d", h.NumTransactions(), h.NumSessions())
	}
	if h.Transaction(0).ID != "a0" || h.Transaction(1).ID != "a1" || h.Transaction(2).ID != "b0" {
		t.Error("session-major indexing broken")
	}
	if h.SessionIndex(0) != 0 || h.SessionIndex(1) != 0 || h.SessionIndex(2) != 1 {
		t.Error("SessionIndex broken")
	}
	txs := h.Transactions()
	txs[0].ID = "mutated"
	if h.Transaction(0).ID == "mutated" {
		t.Error("Transactions() does not copy")
	}
}

func TestSessionOrder(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	so := h.SessionOrder()
	if !so.Has(0, 1) {
		t.Error("missing SO (a0, a1)")
	}
	for _, p := range [][2]int{{1, 0}, {0, 2}, {2, 0}, {1, 2}, {2, 1}} {
		if so.Has(p[0], p[1]) {
			t.Errorf("unexpected SO %v", p)
		}
	}
	if !so.IsStrictPartialOrder() {
		t.Error("SO is not a strict partial order")
	}
}

func TestSessionOrderTransitive(t *testing.T) {
	t.Parallel()
	h := NewHistory(Session{ID: "s", Transactions: []Transaction{
		tx("t0", Write("x", 1)), tx("t1", Write("x", 2)), tx("t2", Write("x", 3)),
	}})
	so := h.SessionOrder()
	if !so.Has(0, 2) {
		t.Error("SO not transitive: missing (0,2)")
	}
	if so.Size() != 3 {
		t.Errorf("SO size = %d, want 3", so.Size())
	}
}

func TestSameSession(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	eq := h.SameSession()
	for _, p := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}} {
		if !eq.Has(p[0], p[1]) {
			t.Errorf("missing ≈ pair %v", p)
		}
	}
	if eq.Has(0, 2) || eq.Has(2, 1) {
		t.Error("cross-session ≈ pair")
	}
}

func TestWriteTxAndObjects(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	if got := h.WriteTx("x"); len(got) != 1 || got[0] != 0 {
		t.Errorf("WriteTx(x) = %v", got)
	}
	if got := h.WriteTx("y"); len(got) != 1 || got[0] != 1 {
		t.Errorf("WriteTx(y) = %v", got)
	}
	if got := h.WriteTx("z"); got != nil {
		t.Errorf("WriteTx(z) = %v", got)
	}
	if got := h.Objects(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Objects = %v", got)
	}
}

func TestHistoryValidate(t *testing.T) {
	t.Parallel()
	good := newTestHistory()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	empty := NewHistory(Session{ID: "s", Transactions: []Transaction{tx("t")}})
	if err := empty.Validate(); err == nil {
		t.Error("empty transaction accepted")
	}
	bad := NewHistory(Session{ID: "s", Transactions: []Transaction{{ID: "t", Ops: []Op{{Kind: OpRead, Obj: ""}}}}})
	if err := bad.Validate(); err == nil {
		t.Error("empty object accepted")
	}
	invalidKind := NewHistory(Session{ID: "s", Transactions: []Transaction{{ID: "t", Ops: []Op{{Obj: "x"}}}}})
	if err := invalidKind.Validate(); err == nil {
		t.Error("invalid op kind accepted")
	}
}

func TestHistoryCheckInt(t *testing.T) {
	t.Parallel()
	h := NewHistory(Session{ID: "s", Transactions: []Transaction{
		tx("ok", Write("x", 1), Read("x", 1)),
		tx("bad", Write("x", 1), Read("x", 9)),
	}})
	err := h.CheckInt()
	if err == nil {
		t.Fatal("INT violation not caught")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q should name the violating transaction", err)
	}
}

func TestSplice(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	sp := h.Splice()
	if sp.NumSessions() != 2 || sp.NumTransactions() != 2 {
		t.Fatalf("splice shape: %d sessions, %d txs", sp.NumSessions(), sp.NumTransactions())
	}
	first := sp.Transaction(0)
	wantOps := []Op{Write("x", 1), Read("x", 1), Write("y", 2)}
	if len(first.Ops) != len(wantOps) {
		t.Fatalf("spliced ops = %v", first.Ops)
	}
	for i, op := range wantOps {
		if first.Ops[i] != op {
			t.Errorf("op %d = %v, want %v", i, first.Ops[i], op)
		}
	}
	if sp.Transaction(1).Ops[0] != Read("y", 2) {
		t.Errorf("second spliced tx = %v", sp.Transaction(1))
	}
	// Mapping: transactions 0,1 → 0; transaction 2 → 1.
	if h.SplicedIndex(0) != 0 || h.SplicedIndex(1) != 0 || h.SplicedIndex(2) != 1 {
		t.Error("SplicedIndex broken")
	}
	// Splicing must not mutate the original.
	if h.NumTransactions() != 3 {
		t.Error("Splice mutated the receiver")
	}
}

func TestWithInit(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	hi := h.WithInit(0)
	if hi.NumTransactions() != 4 {
		t.Fatalf("WithInit txs = %d", hi.NumTransactions())
	}
	init := hi.Transaction(0)
	if init.ID != InitTransactionID {
		t.Errorf("init ID = %q", init.ID)
	}
	w, ok := init.FinalWrite("x")
	if !ok || w != 0 {
		t.Errorf("init write(x) = (%d,%v)", w, ok)
	}
	if !init.Writes("y") {
		t.Error("init misses y")
	}
	if hi.Transaction(1).ID != "a0" {
		t.Error("original transactions not shifted by one")
	}
}

func TestNewHistoryCopies(t *testing.T) {
	t.Parallel()
	sess := Session{ID: "s", Transactions: []Transaction{tx("t", Write("x", 1))}}
	h := NewHistory(sess)
	sess.Transactions[0] = tx("other", Write("x", 2))
	if h.Transaction(0).ID != "t" {
		t.Error("NewHistory aliases caller's slice")
	}
	got := h.Sessions()
	got[0].Transactions[0] = tx("mutated", Write("x", 3))
	if h.Transaction(0).ID != "t" {
		t.Error("Sessions() aliases internal state")
	}
}

func TestStringRenderings(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	s := h.String()
	for _, want := range []string{"session 0 (a)", "session 1 (b)", "write(x, 1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("History.String() = %q missing %q", s, want)
		}
	}
	tr := tx("id", Read("x", 1))
	if got := tr.String(); got != "[id: read(x, 1)]" {
		t.Errorf("Transaction.String() = %q", got)
	}
}

// TestSpliceIdempotent: splicing an already-spliced history preserves
// its shape and operations.
func TestSpliceIdempotent(t *testing.T) {
	t.Parallel()
	h := newTestHistory()
	once := h.Splice()
	twice := once.Splice()
	if twice.NumTransactions() != once.NumTransactions() || twice.NumSessions() != once.NumSessions() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			twice.NumTransactions(), twice.NumSessions(), once.NumTransactions(), once.NumSessions())
	}
	for i := 0; i < once.NumTransactions(); i++ {
		a, b := once.Transaction(i), twice.Transaction(i)
		if len(a.Ops) != len(b.Ops) {
			t.Fatalf("transaction %d ops changed", i)
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				t.Fatalf("op %d/%d changed", i, j)
			}
		}
	}
}
