package model

import (
	"reflect"
	"testing"
)

func TestNormalizeObjs(t *testing.T) {
	t.Parallel()
	got := NormalizeObjs([]Obj{"b", "a", "b", "c", "a"})
	want := []Obj{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizeObjs = %v, want %v", got, want)
	}
	if got := NormalizeObjs(nil); len(got) != 0 {
		t.Fatalf("NormalizeObjs(nil) = %v, want empty", got)
	}
}

func TestObjsIntersect(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b []Obj
		want bool
	}{
		{nil, nil, false},
		{[]Obj{"x"}, nil, false},
		{[]Obj{"x"}, []Obj{"y"}, false},
		{[]Obj{"x", "y"}, []Obj{"y", "z"}, true},
		{[]Obj{"x"}, []Obj{"a", "b", "x"}, true},
	}
	for _, c := range cases {
		if got := ObjsIntersect(c.a, c.b); got != c.want {
			t.Errorf("ObjsIntersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ObjsIntersect(c.b, c.a); got != c.want {
			t.Errorf("ObjsIntersect(%v, %v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}
