package model

// Object-set utilities shared by the static analyses: the chopping and
// robustness packages both manipulate read/write sets declared (or
// extracted) as []Obj slices, and silint lowers abstract-interpretation
// results into the same representation. Keeping the set algebra here
// gives every consumer identical semantics.

// NormalizeObjs returns a sorted copy of objs with duplicates removed.
// Static-analysis constructors normalise their read/write sets with it
// so that map-ordered inputs (e.g. sets extracted by silint) produce
// deterministic graphs and witnesses.
func NormalizeObjs(objs []Obj) []Obj {
	set := make(map[Obj]bool, len(objs))
	for _, x := range objs {
		set[x] = true
	}
	return sortedObjs(set)
}

// ObjsIntersect reports whether the two object sets share an element.
func ObjsIntersect(a, b []Obj) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	set := make(map[Obj]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if set[x] {
			return true
		}
	}
	return false
}
