package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"sian/internal/check"
	. "sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/workload"
)

// staleSessionGraph is the counterexample separating GSI from SI: a
// session whose second transaction reads a value older than its own
// first transaction's write. Indices: 0 init, 1 T1 (writes x=1),
// 2 T2 (reads x=0 from init).
func staleSessionGraph() *depgraph.Graph {
	h := model.NewHistory(
		model.Session{ID: model.InitTransactionID, Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("x", 0)),
		}},
		model.Session{ID: "s", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
			model.NewTransaction("T2", model.Read("x", 0)),
		}},
	)
	g := depgraph.New(h)
	g.AddWW("x", 0, 1)
	g.AddWR("x", 0, 2)
	return g
}

// TestGSISeparation: the stale-session-read graph is in GraphGSI (the
// session order carries no composite weight) but outside GraphSI.
func TestGSISeparation(t *testing.T) {
	t.Parallel()
	g := staleSessionGraph()
	if !g.InGSI() {
		t.Fatalf("stale session read should be GSI-allowed: %v", g.InModel(depgraph.GSI))
	}
	if g.InSI() {
		t.Fatal("stale session read must violate strong session SI")
	}
	x, err := BuildExecutionGSI(g)
	if err != nil {
		t.Fatalf("BuildExecutionGSI: %v", err)
	}
	if err := VerifyGSI(g, x); err != nil {
		t.Fatalf("VerifyGSI: %v", err)
	}
	// The constructed execution necessarily violates SESSION.
	if err := x.IsSI(); err == nil {
		t.Error("GSI execution of a non-SI graph satisfies all SI axioms")
	}
}

func TestBuildExecutionGSIRejectsNonGSI(t *testing.T) {
	t.Parallel()
	lu := workload.LostUpdate()
	if _, err := BuildExecutionGSI(lu.Graph); !errors.Is(err, ErrNotGraphGSI) {
		t.Fatalf("err = %v, want ErrNotGraphGSI", err)
	}
}

// TestGSISoundnessRandomised mirrors the SI and PC soundness property
// tests for GSI.
func TestGSISoundnessRandomised(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	built := 0
	for trial := 0; trial < 100; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 3, Objects: 2,
		})
		res, err := check.Certify(h, depgraph.GSI, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			continue
		}
		built++
		x, err := BuildExecutionGSI(res.Graph)
		if err != nil {
			t.Fatalf("trial %d: BuildExecutionGSI: %v\n%v", trial, err, res.History)
		}
		if err := VerifyGSI(res.Graph, x); err != nil {
			t.Fatalf("trial %d: VerifyGSI: %v\n%v", trial, err, res.History)
		}
	}
	if built == 0 {
		t.Error("no GSI-certifiable history generated")
	}
}

func TestLeastSolutionGSI(t *testing.T) {
	t.Parallel()
	g := staleSessionGraph()
	sol := LeastSolutionGSI(g, nil)
	if !sol.CO.IsAcyclic() {
		t.Error("least GSI CO cyclic on a GraphGSI member")
	}
	// WR ∪ WW must be in VIS, and VIS ⊆ CO.
	base := g.WR().UnionInPlace(g.WW())
	if !base.SubsetOf(sol.VIS) {
		t.Error("WR ∪ WW ⊄ VIS")
	}
	if !sol.VIS.SubsetOf(sol.CO) {
		t.Error("VIS ⊄ CO")
	}
}
