package core_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sian/internal/check"
	. "sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/relation"
	"sian/internal/workload"
)

// writeSkewGraph returns the Figure 2(d) graph (0 init, 1 T1, 2 T2),
// the canonical GraphSI \ GraphSER member.
func writeSkewGraph() *depgraph.Graph {
	h := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("a1", 60), model.Write("a2", 60)),
		}},
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("a1", 60), model.Read("a2", 60), model.Write("a1", -40)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("a1", 60), model.Read("a2", 60), model.Write("a2", -40)),
		}},
	)
	g := depgraph.New(h)
	g.AddWW("a1", 0, 1)
	g.AddWW("a2", 0, 2)
	for _, r := range []int{1, 2} {
		g.AddWR("a1", 0, r)
		g.AddWR("a2", 0, r)
	}
	return g
}

// lostUpdateGraph returns the Figure 2(b) graph, outside GraphSI.
func lostUpdateGraph() *depgraph.Graph {
	h := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("acct", 0)),
		}},
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("acct", 0), model.Write("acct", 50)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("acct", 0), model.Write("acct", 25)),
		}},
	)
	g := depgraph.New(h)
	g.AddWR("acct", 0, 1)
	g.AddWR("acct", 0, 2)
	g.AddWW("acct", 0, 1)
	g.AddWW("acct", 0, 2)
	g.AddWW("acct", 1, 2)
	return g
}

func TestLeastSolutionSolvesSystem(t *testing.T) {
	t.Parallel()
	for _, g := range []*depgraph.Graph{writeSkewGraph(), lostUpdateGraph()} {
		sol := LeastSolution(g, nil)
		if err := CheckSystem(g, sol); err != nil {
			t.Errorf("least solution violates the system: %v", err)
		}
	}
}

func TestLeastSolutionWithForcedEdges(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	r := relation.New(3)
	r.Add(1, 2) // force T1 before T2 in CO
	sol := LeastSolution(g, r)
	if err := CheckSystem(g, sol); err != nil {
		t.Fatalf("solution with R violates the system: %v", err)
	}
	if !sol.CO.Has(1, 2) {
		t.Error("forced edge missing from CO")
	}
	if !r.SubsetOf(sol.CO) {
		t.Error("CO ⊉ R")
	}
}

// TestLeastSolutionMinimality checks the minimality claim of Lemma 15
// against an independent fixed-point computation: starting from the
// inequalities' right-hand sides and iterating to the least fixed
// point must give the same pair.
func TestLeastSolutionMinimality(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	n := g.History.NumTransactions()
	r0 := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	rw := g.RW()
	vis := relation.New(n)
	co := relation.New(n)
	for {
		nextVis := vis.Union(r0).UnionInPlace(co.Compose(vis))
		nextCo := co.Union(vis).
			UnionInPlace(co.Compose(co)).
			UnionInPlace(vis.Compose(rw))
		if nextVis.Equal(vis) && nextCo.Equal(co) {
			break
		}
		vis, co = nextVis, nextCo
	}
	sol := LeastSolution(g, nil)
	if !sol.VIS.Equal(vis) {
		t.Errorf("VIS: closed form %v vs fixed point %v", sol.VIS, vis)
	}
	if !sol.CO.Equal(co) {
		t.Errorf("CO: closed form %v vs fixed point %v", sol.CO, co)
	}
}

func TestCheckSystemDetectsViolations(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	empty := relation.New(3)
	err := CheckSystem(g, Solution{VIS: empty, CO: empty})
	if err == nil || !strings.Contains(err.Error(), "(S1)") {
		t.Errorf("empty solution should violate (S1): %v", err)
	}
}

func TestBuildExecutionWriteSkew(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	x, err := BuildExecution(g)
	if err != nil {
		t.Fatalf("BuildExecution: %v", err)
	}
	if err := Verify(g, x); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuildExecutionRejectsNonSI(t *testing.T) {
	t.Parallel()
	g := lostUpdateGraph()
	_, err := BuildExecution(g)
	if !errors.Is(err, ErrNotGraphSI) {
		t.Fatalf("err = %v, want ErrNotGraphSI", err)
	}
	if _, err := BuildExecutionIncremental(g, nil); !errors.Is(err, ErrNotGraphSI) {
		t.Fatalf("incremental err = %v, want ErrNotGraphSI", err)
	}
}

func TestBuildExecutionRejectsInvalidGraph(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	g.AddWR("a1", 1, 2) // second WR source for T2's read of a1
	if _, err := BuildExecution(g); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestBuildExecutionIncrementalMatchesPaper(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	steps := 0
	var lastPre *execution.Execution
	x, err := BuildExecutionIncremental(g, func(step int, pre *execution.Execution) {
		steps++
		lastPre = pre
		// Every intermediate stage must be a pre-execution in
		// PreExecSI with graph(P) = G (Lemma 13).
		if err := pre.IsPreSI(); err != nil {
			t.Errorf("step %d: pre-execution outside PreExecSI: %v", step, err)
		}
		gp, err := depgraph.FromExecution(pre)
		if err != nil {
			t.Errorf("step %d: graph(P): %v", step, err)
			return
		}
		if !gp.Equal(g) {
			t.Errorf("step %d: graph(P) ≠ G", step)
		}
	})
	if err != nil {
		t.Fatalf("BuildExecutionIncremental: %v", err)
	}
	if steps == 0 {
		t.Error("observer never called")
	}
	if lastPre == nil || !lastPre.CO.IsTotal() {
		t.Error("final stage should have a total CO")
	}
	if err := Verify(g, x); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuildExecutionEquivalence(t *testing.T) {
	t.Parallel()
	// Direct and incremental constructions both produce verified
	// executions (they may differ in CO, which is fine).
	for _, gfn := range []func() *depgraph.Graph{writeSkewGraph} {
		g := gfn()
		direct, err := BuildExecution(g)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := BuildExecutionIncremental(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []*execution.Execution{direct, incr} {
			if err := Verify(g, x); err != nil {
				t.Errorf("Verify: %v", err)
			}
		}
	}
}

func TestCompletenessWriteSkew(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	x, err := BuildExecution(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Completeness(x)
	if err != nil {
		t.Fatalf("Completeness: %v", err)
	}
	if !g2.Equal(g) {
		t.Error("round trip changed the graph")
	}
}

func TestCompletenessRejectsNonSIExecution(t *testing.T) {
	t.Parallel()
	// An execution violating NOCONFLICT (lost-update shape).
	g := lostUpdateGraph()
	h := g.History
	vis := relation.New(3)
	vis.Add(0, 1)
	vis.Add(0, 2)
	co := vis.Clone()
	co.Add(1, 2)
	x := execution.New(h, vis, co)
	if _, err := Completeness(x); err == nil {
		t.Error("Completeness accepted an execution outside ExecSI")
	}
}

// TestSoundnessOnFigure4 exercises the running example of §4.
func TestSoundnessOnFigure4(t *testing.T) {
	t.Parallel()
	figs := workload.Fig4Graphs()
	for name, g := range map[string]*depgraph.Graph{"G1": figs.G1, "G2": figs.G2} {
		x, err := BuildExecution(g)
		if err != nil {
			t.Fatalf("%s: BuildExecution: %v", name, err)
		}
		if err := Verify(g, x); err != nil {
			t.Errorf("%s: Verify: %v", name, err)
		}
	}
}

// TestSoundnessRandomised is the executable form of Theorem 10(i):
// every witness graph the certifier finds for a random history can be
// turned into a verified SI execution with the same dependencies.
func TestSoundnessRandomised(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	built := 0
	for trial := 0; trial < 120; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 3, Objects: 2,
		})
		res, err := check.Certify(h, depgraph.SI, check.Options{})
		if err != nil {
			t.Fatalf("Certify: %v", err)
		}
		if !res.Member {
			continue
		}
		built++
		x, err := BuildExecution(res.Graph)
		if err != nil {
			t.Fatalf("trial %d: BuildExecution on witness: %v\nhistory:\n%v", trial, err, h)
		}
		if err := Verify(res.Graph, x); err != nil {
			t.Fatalf("trial %d: Verify: %v\nhistory:\n%v", trial, err, h)
		}
		// Cross-check the incremental construction too, on a sample.
		if trial%10 == 0 {
			xi, err := BuildExecutionIncremental(res.Graph, nil)
			if err != nil {
				t.Fatalf("trial %d: incremental: %v", trial, err)
			}
			if err := Verify(res.Graph, xi); err != nil {
				t.Fatalf("trial %d: incremental Verify: %v", trial, err)
			}
		}
	}
	if built == 0 {
		t.Error("no random history was SI-certifiable; generator too hostile")
	}
}

// TestBuildExecutionDeterministic: the construction is a pure function
// of the graph (deterministic topological linearisation).
func TestBuildExecutionDeterministic(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	a, err := BuildExecution(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildExecution(writeSkewGraph())
	if err != nil {
		t.Fatal(err)
	}
	if !a.CO.Equal(b.CO) || !a.VIS.Equal(b.VIS) {
		t.Error("BuildExecution is not deterministic")
	}
}
