package core_test

import (
	"math/rand"
	"testing"

	"sian/internal/check"
	. "sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/workload"
)

// collectSIExecutions builds a pool of verified SI executions from
// random histories.
func collectSIExecutions(t *testing.T, trials int, seed int64) []*execution.Execution {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []*execution.Execution
	for trial := 0; trial < trials; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 3, Objects: 2,
		})
		res, err := check.Certify(h, depgraph.SI, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			continue
		}
		x, err := BuildExecution(res.Graph)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		t.Fatal("no SI executions collected")
	}
	return out
}

// TestProposition14 checks the paper's characterisation of
// anti-dependencies on SI executions: S —RW(x)→ T iff S ≠ T, S reads
// x, T finally writes x, and T is not visible to S.
func TestProposition14(t *testing.T) {
	t.Parallel()
	for _, x := range collectSIExecutions(t, 60, 11) {
		g, err := depgraph.FromExecution(x)
		if err != nil {
			t.Fatal(err)
		}
		h := x.History
		n := h.NumTransactions()
		for _, obj := range h.Objects() {
			rw := g.RWObj(obj)
			for s := 0; s < n; s++ {
				for tt := 0; tt < n; tt++ {
					want := s != tt &&
						h.Transaction(s).Reads(obj) &&
						h.Transaction(tt).Writes(obj) &&
						!x.VIS.Has(tt, s)
					if got := rw.Has(s, tt); got != want {
						t.Fatalf("Proposition 14 violated on %q: RW(%d,%d) = %v, want %v\n%v",
							obj, s, tt, got, want, h)
					}
				}
			}
		}
	}
}

// TestLemma12 checks VIS ; RW ⊆ CO on SI executions.
func TestLemma12(t *testing.T) {
	t.Parallel()
	for _, x := range collectSIExecutions(t, 60, 13) {
		g, err := depgraph.FromExecution(x)
		if err != nil {
			t.Fatal(err)
		}
		comp := x.VIS.Compose(g.RW())
		if !comp.SubsetOf(x.CO) {
			t.Fatalf("Lemma 12 violated: VIS ; RW ⊄ CO\n%v", x.History)
		}
	}
}

// TestProposition7 checks that graph extraction from any EXT-satisfying
// execution yields a well-formed dependency graph (Proposition 7 via
// Proposition 23).
func TestProposition7(t *testing.T) {
	t.Parallel()
	for _, x := range collectSIExecutions(t, 40, 17) {
		g, err := depgraph.FromExecution(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Proposition 7 violated: %v\n%v", err, x.History)
		}
	}
}
