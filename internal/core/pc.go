package core

import (
	"errors"
	"fmt"

	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/relation"
)

// This file extends the Theorem 10(i) construction to prefix
// consistency (PC) — the model the paper's §7 singles out as a natural
// target for the same proof technique. PC is SI without NOCONFLICT
// (axioms INT, EXT, SESSION, PREFIX), so write dependencies need not
// be visible; the Figure 3 system relaxes to
//
//	(P1) SO ∪ WR ⊆ VIS       (P2) WW ⊆ CO
//	(P3) CO ; VIS ⊆ VIS      (P4) VIS ⊆ CO
//	(P5) CO ; CO ⊆ CO        (P6) VIS ; RW ⊆ CO
//
// with the Lemma 15-style least solution (for forced edges R)
//
//	CO  = (((SO ∪ WR) ; RW?) ∪ WW ∪ R)⁺
//	VIS = CO? ; (SO ∪ WR)
//
// The correctness of this construction is property-tested against the
// axiomatic PC definition in internal/check.

// ErrNotGraphPC is returned when the input graph is outside GraphPC:
// ((SO ∪ WR) ; RW?) ∪ WW has a cycle, so no PC execution exists.
var ErrNotGraphPC = errors.New("core: graph is not in GraphPC: ((SO ∪ WR) ; RW?) ∪ WW is cyclic")

// LeastSolutionPC computes the least solution of the PC inequality
// system whose CO contains every pair of R (nil R means R = ∅).
func LeastSolutionPC(g *depgraph.Graph, r *relation.Rel) Solution {
	soWR := g.History.SessionOrder().UnionInPlace(g.WR())
	b := soWR.Compose(g.RW().Maybe()).UnionInPlace(g.WW())
	if r != nil {
		b.UnionInPlace(r)
	}
	co := b.TransitiveClosure()
	vis := co.Maybe().Compose(soWR)
	return Solution{VIS: vis, CO: co}
}

// CheckSystemPC verifies that (VIS, CO) satisfies the PC inequality
// system for the graph g.
func CheckSystemPC(g *depgraph.Graph, s Solution) error {
	soWR := g.History.SessionOrder().UnionInPlace(g.WR())
	checks := []struct {
		name string
		ok   bool
	}{
		{"(P1) SO ∪ WR ⊆ VIS", soWR.SubsetOf(s.VIS)},
		{"(P2) WW ⊆ CO", g.WW().SubsetOf(s.CO)},
		{"(P3) CO ; VIS ⊆ VIS", s.CO.Compose(s.VIS).SubsetOf(s.VIS)},
		{"(P4) VIS ⊆ CO", s.VIS.SubsetOf(s.CO)},
		{"(P5) CO ; CO ⊆ CO", s.CO.Compose(s.CO).SubsetOf(s.CO)},
		{"(P6) VIS ; RW ⊆ CO", s.VIS.Compose(g.RW()).SubsetOf(s.CO)},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("inequality %s violated", c.name)
		}
	}
	return nil
}

// BuildExecutionPC constructs, from a graph in GraphPC, an abstract
// execution satisfying the PC axioms whose dependency graph is the
// input — the prefix-consistency analogue of Theorem 10(i).
func BuildExecutionPC(g *depgraph.Graph) (*execution.Execution, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dependency graph: %w", err)
	}
	base := LeastSolutionPC(g, nil)
	if !base.CO.IsAcyclic() {
		return nil, fmt.Errorf("%w (witness cycle %v)", ErrNotGraphPC, base.CO.FindCycle())
	}
	order, err := base.CO.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: linearising CO₀: %w", err)
	}
	n := g.History.NumTransactions()
	co := relation.New(n)
	for i, a := range order {
		for _, b := range order[i+1:] {
			co.Add(a, b)
		}
	}
	soWR := g.History.SessionOrder().UnionInPlace(g.WR())
	vis := co.Maybe().Compose(soWR)
	return execution.New(g.History, vis, co), nil
}

// VerifyPC checks, independently of construction, that x satisfies
// the PC axioms and that graph(x) = g.
func VerifyPC(g *depgraph.Graph, x *execution.Execution) error {
	if err := x.IsPC(); err != nil {
		return fmt.Errorf("core: constructed execution violates the PC axioms: %w", err)
	}
	gx, err := depgraph.FromExecution(x)
	if err != nil {
		return fmt.Errorf("core: extracting graph(X): %w", err)
	}
	if !gx.Equal(g) {
		return errors.New("core: graph(X) differs from the input dependency graph")
	}
	return nil
}

// CompletenessPC checks the completeness direction for PC: an
// execution satisfying the PC axioms extracts to a graph in GraphPC.
func CompletenessPC(x *execution.Execution) (*depgraph.Graph, error) {
	if err := x.IsPC(); err != nil {
		return nil, fmt.Errorf("core: execution violates the PC axioms: %w", err)
	}
	g, err := depgraph.FromExecution(x)
	if err != nil {
		return nil, err
	}
	if err := g.InModel(depgraph.PC); err != nil {
		return nil, fmt.Errorf("core: PC completeness violated: %w", err)
	}
	return g, nil
}
