// Package core implements the technical heart of the paper: the
// soundness direction of Theorem 10. Given a dependency graph
// G ∈ GraphSI it constructs an abstract execution X ∈ ExecSI with
// graph(X) = G, by solving the system of inequalities of Figure 3
//
//	(S1) SO ∪ WR ∪ WW ⊆ VIS
//	(S2) CO ; VIS ⊆ VIS
//	(S3) VIS ⊆ CO
//	(S4) CO ; CO ⊆ CO
//	(S5) VIS ; RW ⊆ CO
//
// via the closed-form least solution of Lemma 15,
//
//	VIS = (((SO ∪ WR ∪ WW) ; RW?) ∪ R)* ; (SO ∪ WR ∪ WW)
//	CO  = (((SO ∪ WR ∪ WW) ; RW?) ∪ R)⁺
//
// and then extending the commit order CO to a total order by repeatedly
// enforcing an unrelated pair and re-solving (the proof of Theorem
// 10(i)). Because CO_{i+1} = (CO_i ∪ {(T_i, S_i)})⁺ and the pair is
// chosen unrelated, acyclicity is preserved at every step; the package
// provides both the paper-faithful incremental construction (useful
// for inspecting intermediate pre-executions) and a fast direct
// construction that linearises CO₀ with one topological sort.
package core

import (
	"errors"
	"fmt"

	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/relation"
)

// Solution is a pair of relations (VIS, CO) solving the Figure 3
// system for some dependency graph.
type Solution struct {
	VIS *relation.Rel
	CO  *relation.Rel
}

// LeastSolution computes the Lemma 15 least solution of the Figure 3
// system whose CO contains every pair of R. Passing a nil R yields the
// overall least solution (R = ∅). The result solves the system for any
// dependency graph, but is acyclic only when G ∈ GraphSI and R was
// chosen to keep it so.
func LeastSolution(g *depgraph.Graph, r *relation.Rel) Solution {
	r0 := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	b := r0.Compose(g.RW().Maybe())
	if r != nil {
		b.UnionInPlace(r)
	}
	co := b.TransitiveClosure()
	// VIS = B* ; R₀ = CO? ; R₀ — the closed form of Lemma 15.
	vis := co.Maybe().Compose(r0)
	return Solution{VIS: vis, CO: co}
}

// CheckSystem verifies that (VIS, CO) satisfies the five inequalities
// of Figure 3 for the graph g, returning a descriptive error naming
// the first violated inequality.
func CheckSystem(g *depgraph.Graph, s Solution) error {
	r0 := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	rw := g.RW()
	checks := []struct {
		name string
		ok   bool
	}{
		{"(S1) SO ∪ WR ∪ WW ⊆ VIS", r0.SubsetOf(s.VIS)},
		{"(S2) CO ; VIS ⊆ VIS", s.CO.Compose(s.VIS).SubsetOf(s.VIS)},
		{"(S3) VIS ⊆ CO", s.VIS.SubsetOf(s.CO)},
		{"(S4) CO ; CO ⊆ CO", s.CO.Compose(s.CO).SubsetOf(s.CO)},
		{"(S5) VIS ; RW ⊆ CO", s.VIS.Compose(rw).SubsetOf(s.CO)},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("inequality %s violated", c.name)
		}
	}
	return nil
}

// ErrNotGraphSI is returned when the input graph is outside GraphSI,
// i.e. (SO ∪ WR ∪ WW) ; RW? has a cycle, so no SI execution exists
// (Theorem 9).
var ErrNotGraphSI = errors.New("core: graph is not in GraphSI: (SO ∪ WR ∪ WW) ; RW? is cyclic")

// BuildExecution implements Theorem 10(i) directly: from G ∈ GraphSI
// it produces X ∈ ExecSI with graph(X) = G. It returns ErrNotGraphSI
// (wrapped) when G is outside GraphSI.
//
// Construction: compute the least solution (VIS₀, CO₀); linearise CO₀
// with a deterministic topological sort into a total order CO; set
// VIS = CO? ; (SO ∪ WR ∪ WW). This equals the limit of the paper's
// incremental pair-forcing process when pairs are enforced consistently
// with the chosen linearisation, so it inherits the proof of Theorem
// 10(i); Verify (or the tests) re-check every SI axiom independently.
func BuildExecution(g *depgraph.Graph) (*execution.Execution, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dependency graph: %w", err)
	}
	base := LeastSolution(g, nil)
	if !base.CO.IsAcyclic() {
		return nil, fmt.Errorf("%w (witness cycle %v)", ErrNotGraphSI, base.CO.FindCycle())
	}
	order, err := base.CO.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: linearising CO₀: %w", err)
	}
	n := g.History.NumTransactions()
	co := relation.New(n)
	for i, a := range order {
		for _, b := range order[i+1:] {
			co.Add(a, b)
		}
	}
	r0 := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	vis := co.Maybe().Compose(r0)
	return execution.New(g.History, vis, co), nil
}

// BuildExecutionIncremental is the paper-faithful version of the
// Theorem 10(i) construction: starting from the least solution it
// repeatedly picks the smallest CO-unrelated pair (in index order),
// forces it into CO via Lemma 15 (equivalently CO_{i+1} =
// (CO_i ∪ {(t,s)})⁺ with VIS recomputed), and stops when CO is total.
// When observe is non-nil it is called with every intermediate
// pre-execution, including the final one; observers must not retain or
// mutate the argument.
func BuildExecutionIncremental(g *depgraph.Graph, observe func(step int, pre *execution.Execution)) (*execution.Execution, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dependency graph: %w", err)
	}
	sol := LeastSolution(g, nil)
	if !sol.CO.IsAcyclic() {
		return nil, fmt.Errorf("%w (witness cycle %v)", ErrNotGraphSI, sol.CO.FindCycle())
	}
	n := g.History.NumTransactions()
	r0 := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	step := 0
	if observe != nil {
		observe(step, execution.New(g.History, sol.VIS, sol.CO))
	}
	for {
		t, s, found := firstUnrelated(sol.CO, n)
		if !found {
			break
		}
		// CO_{i+1} = (CO_i ∪ {(t,s)})⁺. Since CO_i is already
		// transitive, only pairs routed through the new edge appear:
		// CO?⁻¹(t) × CO?(s).
		preds := sol.CO.Maybe().Inverse().Successors(t)
		succs := sol.CO.Maybe().Successors(s)
		for _, a := range preds {
			for _, b := range succs {
				if a == b {
					return nil, fmt.Errorf("core: internal error: forcing (%d,%d) closed a cycle at %d", t, s, a)
				}
				sol.CO.Add(a, b)
			}
		}
		sol.VIS = sol.CO.Maybe().Compose(r0)
		step++
		if observe != nil {
			observe(step, execution.New(g.History, sol.VIS, sol.CO))
		}
	}
	return execution.New(g.History, sol.VIS, sol.CO), nil
}

// firstUnrelated returns the smallest (in lexicographic index order)
// pair of distinct transactions unrelated by co.
func firstUnrelated(co *relation.Rel, n int) (int, int, bool) {
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !co.Has(a, b) && !co.Has(b, a) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}

// Verify checks, independently of how x was built, that x ∈ ExecSI and
// graph(x) equals g — the full conclusion of Theorem 10(i). It is used
// by the tests and by callers that want end-to-end certification of
// the construction.
func Verify(g *depgraph.Graph, x *execution.Execution) error {
	if err := x.IsSI(); err != nil {
		return fmt.Errorf("core: constructed execution outside ExecSI: %w", err)
	}
	gx, err := depgraph.FromExecution(x)
	if err != nil {
		return fmt.Errorf("core: extracting graph(X): %w", err)
	}
	if !gx.Equal(g) {
		return errors.New("core: graph(X) differs from the input dependency graph")
	}
	return nil
}

// Completeness implements Theorem 10(ii): for X ∈ ExecSI, graph(X) ∈
// GraphSI. It extracts the dependency graph and checks GraphSI
// membership, returning the graph for further use.
func Completeness(x *execution.Execution) (*depgraph.Graph, error) {
	if err := x.IsSI(); err != nil {
		return nil, fmt.Errorf("core: execution outside ExecSI: %w", err)
	}
	g, err := depgraph.FromExecution(x)
	if err != nil {
		return nil, err
	}
	if err := g.InModel(depgraph.SI); err != nil {
		return nil, fmt.Errorf("core: completeness violated (this contradicts Theorem 10(ii)): %w", err)
	}
	return g, nil
}
