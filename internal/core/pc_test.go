package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"sian/internal/check"
	. "sian/internal/core"
	"sian/internal/depgraph"

	"sian/internal/relation"
	"sian/internal/workload"
)

// lostUpdatePCGraph returns the Figure 2(b) graph, which is in GraphPC
// (lost updates are allowed without NOCONFLICT) but outside GraphSI.
func lostUpdatePCGraph() *depgraph.Graph {
	return lostUpdateGraph()
}

func TestLeastSolutionPCSolvesSystem(t *testing.T) {
	t.Parallel()
	for _, g := range []*depgraph.Graph{writeSkewGraph(), lostUpdatePCGraph()} {
		sol := LeastSolutionPC(g, nil)
		if err := CheckSystemPC(g, sol); err != nil {
			t.Errorf("least PC solution violates the system: %v", err)
		}
	}
}

func TestLeastSolutionPCForcedEdges(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	r := relation.New(3)
	r.Add(2, 1)
	sol := LeastSolutionPC(g, r)
	if err := CheckSystemPC(g, sol); err != nil {
		t.Fatal(err)
	}
	if !sol.CO.Has(2, 1) {
		t.Error("forced edge missing")
	}
}

// TestBuildExecutionPCLostUpdate is the headline PC result: the lost
// update, rejected by SI, admits a verified PC execution.
func TestBuildExecutionPCLostUpdate(t *testing.T) {
	t.Parallel()
	g := lostUpdatePCGraph()
	if _, err := BuildExecution(g); !errors.Is(err, ErrNotGraphSI) {
		t.Fatalf("lost update should be outside GraphSI: %v", err)
	}
	x, err := BuildExecutionPC(g)
	if err != nil {
		t.Fatalf("BuildExecutionPC: %v", err)
	}
	if err := VerifyPC(g, x); err != nil {
		t.Fatalf("VerifyPC: %v", err)
	}
	// The constructed execution must violate NOCONFLICT — otherwise it
	// would be an SI execution of a non-SI history.
	if err := x.IsSI(); err == nil {
		t.Error("lost-update execution unexpectedly satisfies all SI axioms")
	}
}

func TestBuildExecutionPCRejectsNonPC(t *testing.T) {
	t.Parallel()
	// The long fork is outside GraphPC.
	lf := workload.LongFork()
	if _, err := BuildExecutionPC(lf.Graph); !errors.Is(err, ErrNotGraphPC) {
		t.Fatalf("err = %v, want ErrNotGraphPC", err)
	}
}

func TestCompletenessPC(t *testing.T) {
	t.Parallel()
	g := lostUpdatePCGraph()
	x, err := BuildExecutionPC(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := CompletenessPC(x)
	if err != nil {
		t.Fatalf("CompletenessPC: %v", err)
	}
	if !g2.Equal(g) {
		t.Error("round trip changed the graph")
	}
}

// TestPCSoundnessRandomised: every PC witness graph the certifier
// finds converts into a verified PC execution with identical
// dependencies — the PC analogue of Theorem 10(i), exercised on random
// histories.
func TestPCSoundnessRandomised(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(77))
	built := 0
	for trial := 0; trial < 120; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 3, Objects: 2,
		})
		res, err := check.Certify(h, depgraph.PC, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			continue
		}
		built++
		x, err := BuildExecutionPC(res.Graph)
		if err != nil {
			t.Fatalf("trial %d: BuildExecutionPC: %v\n%v", trial, err, res.History)
		}
		if err := VerifyPC(res.Graph, x); err != nil {
			t.Fatalf("trial %d: VerifyPC: %v\n%v", trial, err, res.History)
		}
	}
	if built == 0 {
		t.Error("no PC-certifiable history generated")
	}
}

func TestCheckSystemPCViolations(t *testing.T) {
	t.Parallel()
	g := writeSkewGraph()
	empty := relation.New(3)
	if err := CheckSystemPC(g, Solution{VIS: empty, CO: empty}); err == nil {
		t.Error("empty solution accepted by PC system")
	}
}
