package core

import (
	"errors"
	"fmt"

	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/relation"
)

// This file extends the Theorem 10(i) construction to generalised SI
// (GSI) [17] — SI without the SESSION axiom, which §2 of the paper
// contrasts with the strong session variant it adopts. Dropping
// SESSION removes SO from the visibility lower bound, so the Figure 3
// system becomes
//
//	(G1) WR ∪ WW ⊆ VIS       (G2) CO ; VIS ⊆ VIS
//	(G3) VIS ⊆ CO            (G4) CO ; CO ⊆ CO
//	(G5) VIS ; RW ⊆ CO
//
// with least solution CO = (((WR ∪ WW) ; RW?) ∪ R)⁺ and
// VIS = CO? ; (WR ∪ WW); the characterisation is acyclicity of
// (WR ∪ WW) ; RW?. Validated against the axiomatic definition in
// internal/check.

// ErrNotGraphGSI is returned when the input graph is outside GraphGSI.
var ErrNotGraphGSI = errors.New("core: graph is not in GraphGSI: (WR ∪ WW) ; RW? is cyclic")

// LeastSolutionGSI computes the least solution of the GSI system whose
// CO contains every pair of R (nil R means R = ∅).
func LeastSolutionGSI(g *depgraph.Graph, r *relation.Rel) Solution {
	base := g.WR().UnionInPlace(g.WW())
	b := base.Compose(g.RW().Maybe())
	if r != nil {
		b.UnionInPlace(r)
	}
	co := b.TransitiveClosure()
	vis := co.Maybe().Compose(base)
	return Solution{VIS: vis, CO: co}
}

// BuildExecutionGSI constructs, from a graph in GraphGSI, an abstract
// execution satisfying the GSI axioms whose dependency graph is the
// input.
func BuildExecutionGSI(g *depgraph.Graph) (*execution.Execution, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dependency graph: %w", err)
	}
	base := LeastSolutionGSI(g, nil)
	if !base.CO.IsAcyclic() {
		return nil, fmt.Errorf("%w (witness cycle %v)", ErrNotGraphGSI, base.CO.FindCycle())
	}
	order, err := base.CO.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: linearising CO₀: %w", err)
	}
	n := g.History.NumTransactions()
	co := relation.New(n)
	for i, a := range order {
		for _, b := range order[i+1:] {
			co.Add(a, b)
		}
	}
	vis := co.Maybe().Compose(g.WR().UnionInPlace(g.WW()))
	return execution.New(g.History, vis, co), nil
}

// VerifyGSI checks, independently of construction, that x satisfies
// the GSI axioms and that graph(x) = g.
func VerifyGSI(g *depgraph.Graph, x *execution.Execution) error {
	if err := x.IsGSI(); err != nil {
		return fmt.Errorf("core: constructed execution violates the GSI axioms: %w", err)
	}
	gx, err := depgraph.FromExecution(x)
	if err != nil {
		return fmt.Errorf("core: extracting graph(X): %w", err)
	}
	if !gx.Equal(g) {
		return errors.New("core: graph(X) differs from the input dependency graph")
	}
	return nil
}
