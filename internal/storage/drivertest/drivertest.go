// Package drivertest is the shared conformance suite every storage
// driver must pass. It generalises the former kvstore hammer /
// differential tests to the storage.Driver interface, so the in-memory
// driver (storage/mem via storage.NewMem) and the write-ahead-logged
// driver (storage/wal) are pinned to the same semantics: per-chain
// monotonic installs, snapshot reads, batch-path consistency, the
// atomic LockObjs commit window, and watermark compaction —
// differentially checked against the seed engine's single-lock
// reference store. Driver packages call Run from their own tests; CI
// runs the suites under -race.
package drivertest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"sian/internal/model"
	"sian/internal/storage"
)

// Factory returns a fresh, empty driver for one (sub)test. The suite
// closes the driver when the test ends.
type Factory func(t *testing.T) storage.Driver

// Run executes the full conformance suite against drivers built by
// factory.
func Run(t *testing.T, factory Factory) {
	t.Run("HammerDifferential", func(t *testing.T) { hammerDifferential(t, factory) })
	t.Run("InstallBatchMatchesSequential", func(t *testing.T) { installBatchMatchesSequential(t, factory) })
	t.Run("LockObjsWindow", func(t *testing.T) { lockObjsWindow(t, factory) })
	t.Run("BatchWindow", func(t *testing.T) { batchWindow(t, factory) })
	t.Run("BatchWindowMatchesSolo", func(t *testing.T) { batchWindowMatchesSolo(t, factory) })
}

func newDriver(t *testing.T, factory Factory) storage.Driver {
	t.Helper()
	d := factory(t)
	t.Cleanup(func() {
		if err := d.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return d
}

// refStore is the seed engine's single-lock store: one RWMutex around
// one chain map. It is the reference implementation every driver is
// differentially pinned against.
type refStore struct {
	mu     sync.RWMutex
	chains map[model.Obj][]storage.Version
}

func (s *refStore) install(x model.Obj, v storage.Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chains == nil {
		s.chains = make(map[model.Obj][]storage.Version)
	}
	chain := s.chains[x]
	if len(chain) > 0 && chain[len(chain)-1].TS >= v.TS {
		return fmt.Errorf("ref: non-monotonic install on %q", x)
	}
	s.chains[x] = append(chain, v)
	return nil
}

func (s *refStore) readAt(x model.Obj, ts uint64) (storage.Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[x]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > ts })
	if i == 0 {
		return storage.Version{}, false
	}
	return chain[i-1], true
}

func (s *refStore) gc(watermark uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for x, chain := range s.chains {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > watermark })
		if i > 1 {
			keep := make([]storage.Version, len(chain)-(i-1))
			copy(keep, chain[i-1:])
			s.chains[x] = keep
			dropped += i - 1
		}
	}
	return dropped
}

// hammerOp is one entry of a randomized op log: an install of version
// ts onto obj, or (install=false) a read probe at ts.
type hammerOp struct {
	obj     model.Obj
	ts      uint64
	install bool
}

// hammerDifferential pins the driver to the single-lock reference
// store on a randomized op log. The log is generated with per-object
// monotonically increasing install timestamps, partitioned across
// goroutines by object (so concurrent application is deterministic per
// chain), applied concurrently to the driver while readers probe it,
// then replayed sequentially into the reference store; every chain and
// every read probe must agree.
func hammerDifferential(t *testing.T, factory Factory) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const objects = 24
			const opsPerObj = 60

			// Per-object op logs with strictly increasing timestamps.
			logs := make([][]hammerOp, objects)
			for o := range logs {
				obj := model.Obj(fmt.Sprintf("h%d", o))
				ts := uint64(0)
				for i := 0; i < opsPerObj; i++ {
					ts += 1 + uint64(rng.Intn(5))
					logs[o] = append(logs[o], hammerOp{obj: obj, ts: ts, install: rng.Intn(4) != 0})
				}
			}

			d := newDriver(t, factory)
			var wg sync.WaitGroup
			for o := range logs {
				wg.Add(1)
				go func(log []hammerOp) {
					defer wg.Done()
					for _, op := range log {
						if op.install {
							if err := d.Install(op.obj, storage.Version{Val: model.Value(op.ts), TS: op.ts}); err != nil {
								t.Errorf("Install(%s,%d): %v", op.obj, op.ts, err)
								return
							}
						} else {
							// Probe concurrently; the value, if present, must
							// be the timestamp it was installed with.
							if v, ok := d.ReadAt(op.obj, op.ts); ok && uint64(v.Val) != v.TS {
								t.Errorf("ReadAt(%s,%d) returned torn version %+v", op.obj, op.ts, v)
								return
							}
						}
					}
				}(logs[o])
			}
			// Cross-object readers exercising the batch paths while
			// installs run.
			stop := make(chan struct{})
			var readers sync.WaitGroup
			readers.Add(1)
			go func() {
				defer readers.Done()
				probe := make([]model.Obj, objects)
				for o := range probe {
					probe[o] = model.Obj(fmt.Sprintf("h%d", o))
				}
				rng := rand.New(rand.NewSource(seed + 1000))
				for {
					select {
					case <-stop:
						return
					default:
					}
					vs, oks := d.ReadAtBatch(probe, uint64(1+rng.Intn(200)))
					for i := range vs {
						if oks[i] && uint64(vs[i].Val) != vs[i].TS {
							t.Errorf("ReadAtBatch returned torn version %+v", vs[i])
							return
						}
					}
					d.LatestTSBatch(probe)
				}
			}()
			wg.Wait()
			close(stop)
			readers.Wait()

			// Sequential replay into the reference store.
			ref := &refStore{}
			for _, log := range logs {
				for _, op := range log {
					if op.install {
						if err := ref.install(op.obj, storage.Version{Val: model.Value(op.ts), TS: op.ts}); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Differential read sweep over every object and timestamp.
			compare := func() {
				for _, log := range logs {
					for ts := uint64(0); ts <= log[len(log)-1].ts+1; ts++ {
						got, gok := d.ReadAt(log[0].obj, ts)
						want, wok := ref.readAt(log[0].obj, ts)
						if gok != wok || got != want {
							t.Fatalf("ReadAt(%s,%d): driver (%+v,%v) != ref (%+v,%v)",
								log[0].obj, ts, got, gok, want, wok)
						}
					}
				}
			}
			compare()

			// Compact both at the same watermark; drop counts and
			// post-compaction reads must agree.
			watermark := uint64(rng.Intn(200))
			if g, w := d.Compact(watermark), ref.gc(watermark); g != w {
				t.Fatalf("Compact(%d): driver dropped %d, ref dropped %d", watermark, g, w)
			}
			compare()
		})
	}
}

// installBatchMatchesSequential pins InstallBatch to the semantics of
// per-object Install calls.
func installBatchMatchesSequential(t *testing.T, factory Factory) {
	batch := newDriver(t, factory)
	seq := newDriver(t, factory)
	var ws []storage.Write
	for i := 0; i < 50; i++ {
		obj := model.Obj(fmt.Sprintf("b%d", i%7))
		v := storage.Version{Val: model.Value(i), TS: uint64(i + 1), Meta: uint64(i)}
		ws = append(ws, storage.Write{Obj: obj, Version: v})
		if err := seq.Install(obj, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.InstallBatch(ws); err != nil {
		t.Fatal(err)
	}
	for _, obj := range seq.Objects() {
		if batch.VersionCount(obj) != seq.VersionCount(obj) {
			t.Errorf("%s: batch %d versions, seq %d", obj, batch.VersionCount(obj), seq.VersionCount(obj))
		}
		for ts := uint64(0); ts <= 51; ts++ {
			got, gok := batch.ReadAt(obj, ts)
			want, wok := seq.ReadAt(obj, ts)
			if gok != wok || got != want {
				t.Fatalf("ReadAt(%s,%d) mismatch", obj, ts)
			}
		}
	}
	// A non-monotonic batch write surfaces the install error.
	if err := batch.InstallBatch([]storage.Write{{Obj: "b0", Version: storage.Version{TS: 1}}}); err == nil {
		t.Error("non-monotonic batch accepted")
	}
}

// batchWindow exercises the group-commit window (Driver.LockBatch):
// the union lock must make validate-then-install atomic for every
// member against concurrent overlapping windows, records staged via
// LogCommitBatch must be durable as one group (for drivers exposing
// DurableWindow), and installs through the batch window must read
// back exactly like solo installs.
func batchWindow(t *testing.T, factory Factory) {
	d := newDriver(t, factory)

	// Two disjoint members committed under one union window.
	union := []model.Obj{"bx", "by", "bz"}
	w := d.LockBatch(union)
	for _, x := range union {
		if got := w.LatestTS(x); got != 0 {
			t.Fatalf("LatestTS(%s) = %d on empty store", x, got)
		}
	}
	// Member 1 writes bx,by at ts 1; member 2 writes bz at ts 2.
	for _, x := range []model.Obj{"bx", "by"} {
		if err := w.Install(x, storage.Version{Val: 10, TS: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Install("bz", storage.Version{Val: 20, TS: 2}); err != nil {
		t.Fatal(err)
	}
	w.LogCommitBatch([]storage.CommitRecord{
		{TS: 1, Session: "s1", TxID: "t1", Ops: []model.Op{model.Write("bx", 10), model.Write("by", 10)}},
		{TS: 2, Session: "s2", TxID: "t2", Ops: []model.Op{model.Write("bz", 20)}},
	})
	w.Unlock()
	if dw, ok := w.(storage.DurableWindow); ok {
		lsn, err := dw.Durable()
		if err != nil {
			t.Fatalf("group sync: %v", err)
		}
		if lsn == 0 {
			t.Error("durable batch window reported LSN 0")
		}
	}
	for _, probe := range []struct {
		obj model.Obj
		ts  uint64
		val model.Value
	}{{"bx", 1, 10}, {"by", 1, 10}, {"bz", 2, 20}} {
		v, ok := d.ReadAt(probe.obj, probe.ts)
		if !ok || v.Val != probe.val {
			t.Errorf("ReadAt(%s,%d) = (%+v,%v), want val %d", probe.obj, probe.ts, v, ok, probe.val)
		}
	}

	// First-committer-wins through the batch window: concurrent
	// batches over overlapping unions must serialize, and exactly one
	// winner per round installs.
	const rounds = 100
	var wins [2]int
	var wg sync.WaitGroup
	start := make(chan int, 2)
	objs := []model.Obj{"bw1", "bw2"}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := range start {
				l := d.LockBatch(objs)
				ok := true
				for _, x := range objs {
					if l.LatestTS(x) > uint64(round) {
						ok = false
					}
				}
				if ok {
					for _, x := range objs {
						if err := l.Install(x, storage.Version{Val: model.Value(g), TS: uint64(round + 1)}); err != nil {
							t.Errorf("install: %v", err)
						}
					}
					wins[g]++
				}
				l.Unlock()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for r := 0; r < rounds; r++ {
		start <- r
		start <- r
	}
	close(start)
	<-done
	total := wins[0] + wins[1]
	if got := d.VersionCount("bw1"); got != total || got != d.VersionCount("bw2") {
		t.Errorf("versions bw1=%d bw2=%d, want both %d (wins %v)",
			d.VersionCount("bw1"), d.VersionCount("bw2"), total, wins)
	}
}

// batchWindowMatchesSolo differentially pins the batch window to the
// solo window: committing the same disjoint transactions through one
// LockBatch union window or through per-transaction LockObjs windows
// must leave identical stores.
func batchWindowMatchesSolo(t *testing.T, factory Factory) {
	batched := newDriver(t, factory)
	solo := newDriver(t, factory)

	type member struct {
		objs []model.Obj
		ts   uint64
	}
	var members []member
	for i := 0; i < 20; i++ {
		members = append(members, member{
			objs: []model.Obj{model.Obj(fmt.Sprintf("m%d_a", i)), model.Obj(fmt.Sprintf("m%d_b", i))},
			ts:   uint64(i + 1),
		})
	}

	var union []model.Obj
	var recs []storage.CommitRecord
	for _, m := range members {
		union = append(union, m.objs...)
	}
	w := batched.LockBatch(union)
	for _, m := range members {
		for _, x := range m.objs {
			if err := w.Install(x, storage.Version{Val: model.Value(m.ts), TS: m.ts}); err != nil {
				t.Fatal(err)
			}
		}
		recs = append(recs, storage.CommitRecord{TS: m.ts, Session: "s", TxID: fmt.Sprintf("t%d", m.ts)})
	}
	w.LogCommitBatch(recs)
	w.Unlock()
	if dw, ok := w.(storage.DurableWindow); ok {
		if _, err := dw.Durable(); err != nil {
			t.Fatal(err)
		}
	}

	for _, m := range members {
		l := solo.LockObjs(m.objs)
		for _, x := range m.objs {
			if err := l.Install(x, storage.Version{Val: model.Value(m.ts), TS: m.ts}); err != nil {
				t.Fatal(err)
			}
		}
		if lg, ok := l.(storage.CommitLogger); ok {
			lg.LogCommit(storage.CommitRecord{TS: m.ts, Session: "s", TxID: fmt.Sprintf("t%d", m.ts)})
		}
		l.Unlock()
	}

	for _, m := range members {
		for _, x := range m.objs {
			if batched.VersionCount(x) != solo.VersionCount(x) {
				t.Errorf("%s: batched %d versions, solo %d", x, batched.VersionCount(x), solo.VersionCount(x))
			}
			for ts := uint64(0); ts <= uint64(len(members))+1; ts++ {
				got, gok := batched.ReadAt(x, ts)
				want, wok := solo.ReadAt(x, ts)
				if gok != wok || got != want {
					t.Fatalf("ReadAt(%s,%d): batched (%+v,%v) != solo (%+v,%v)", x, ts, got, gok, want, wok)
				}
			}
		}
	}
}

// lockObjsWindow exercises the commit-window lock: validation and
// installation under LockObjs must be atomic against a concurrent
// commit of an overlapping write set.
func lockObjsWindow(t *testing.T, factory Factory) {
	d := newDriver(t, factory)
	objs := []model.Obj{"x", "y"}
	const rounds = 200
	var wins [2]int
	var wg sync.WaitGroup
	start := make(chan int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := range start {
				l := d.LockObjs(objs)
				ok := true
				for _, x := range objs {
					if l.LatestTS(x) > uint64(round) {
						ok = false
					}
				}
				if ok {
					for _, x := range objs {
						if err := l.Install(x, storage.Version{Val: model.Value(w), TS: uint64(round + 1)}); err != nil {
							t.Errorf("install: %v", err)
						}
					}
					wins[w]++ // guarded: only one goroutine can win a round
				}
				l.Unlock()
			}
		}(w)
	}
	// Feed each round to both workers; first-committer-wins must hold
	// per round, so total installs per object equal total won rounds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for r := 0; r < rounds; r++ {
		start <- r
		start <- r
	}
	close(start)
	<-done
	total := wins[0] + wins[1]
	if got := d.VersionCount("x"); got != total || got != d.VersionCount("y") {
		t.Errorf("versions x=%d y=%d, want both %d (wins %v)", d.VersionCount("x"), d.VersionCount("y"), total, wins)
	}
}
