package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"sian/internal/model"
	"sian/internal/storage"
)

// On-disk format. A segment file is the magic followed by frames:
//
//	frame   := u32 payloadLen | u32 crc32c(payload) | payload
//	payload := u8 kind | u64 lsn | body
//
// All integers are big-endian; strings are u32 length + bytes; values
// (model.Value, int64) travel as their two's-complement uint64 bits.
// Record kinds:
//
//	commit  (1): u64 ts | str session | str txid | u32 nops |
//	             nops × (u8 opKind | str obj | i64 val)
//	             — one engine commit, full operation list included so
//	             recovery replay re-certifies the history.
//	install (2): str obj | i64 val | u64 ts | str writer | u64 meta
//	             — one raw version install that bypassed the engine
//	             commit path (Driver.Install / InstallBatch).
//
// The snapshot file is magic, u64 lastLSN, u64 maxTS, u32 count,
// count × install-shaped entries, then u32 crc32c over everything
// after the magic. It is written to a temp file, fsynced and renamed,
// so a torn snapshot never becomes visible; a snapshot that fails its
// CRC is disk corruption and refuses recovery (its segments may
// already be truncated, so falling back to "ignore it" could silently
// lose acknowledged commits).

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	segMagic  = "SIWAL001"
	snapMagic = "SISNAP01"

	recCommit  byte = 1
	recInstall byte = 2

	wireOpRead  byte = 0
	wireOpWrite byte = 1

	// maxFramePayload bounds a single frame (64 MiB): a sanity check
	// that turns a corrupt length prefix into a clean torn-tail stop
	// instead of a giant allocation.
	maxFramePayload = 1 << 26

	// frameHeaderLen is the length+CRC prefix.
	frameHeaderLen = 8
)

func beUint32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }
func beUint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func crcChecksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

func appendUint32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v model.Value) []byte {
	return appendUint64(b, uint64(v))
}

// encodeFrame wraps kind+lsn+body into a length-prefixed CRC-framed
// record.
func encodeFrame(kind byte, lsn uint64, body []byte) []byte {
	payload := make([]byte, 0, 9+len(body))
	payload = append(payload, kind)
	payload = appendUint64(payload, lsn)
	payload = append(payload, body...)
	out := make([]byte, 0, frameHeaderLen+len(payload))
	out = appendUint32(out, uint32(len(payload)))
	out = appendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

func encodeCommitBody(rec storage.CommitRecord) []byte {
	b := make([]byte, 0, 32+16*len(rec.Ops))
	b = appendUint64(b, rec.TS)
	b = appendString(b, rec.Session)
	b = appendString(b, rec.TxID)
	b = appendUint32(b, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		k := wireOpRead
		if op.Kind == model.OpWrite {
			k = wireOpWrite
		}
		b = append(b, k)
		b = appendString(b, string(op.Obj))
		b = appendValue(b, op.Val)
	}
	return b
}

func encodeInstallBody(x model.Obj, v storage.Version) []byte {
	b := make([]byte, 0, 40+len(x)+len(v.Writer))
	b = appendString(b, string(x))
	b = appendValue(b, v.Val)
	b = appendUint64(b, v.TS)
	b = appendString(b, v.Writer)
	b = appendUint64(b, v.Meta)
	return b
}

// byteReader decodes a frame body with sticky error handling, so a
// record truncated mid-field surfaces as one decode error instead of a
// panic.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: truncated %s at offset %d", what, r.off)
	}
}

func (r *byteReader) u8(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *byteReader) str(what string) string {
	n := r.u32(what)
	if r.err != nil {
		return ""
	}
	if n > math.MaxInt32 || r.off+int(n) > len(r.b) {
		r.fail(what)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) val(what string) model.Value {
	return model.Value(r.u64(what))
}

func (r *byteReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wal: %d trailing bytes after %s", len(r.b)-r.off, what)
	}
	return nil
}

func decodeCommitBody(b []byte) (storage.CommitRecord, error) {
	r := &byteReader{b: b}
	rec := storage.CommitRecord{
		TS:      r.u64("commit ts"),
		Session: r.str("commit session"),
		TxID:    r.str("commit txid"),
	}
	n := r.u32("commit op count")
	if r.err == nil && int(n) > len(b) { // each op is ≥ 13 bytes; cheap bound
		return rec, fmt.Errorf("wal: implausible op count %d in %d-byte commit record", n, len(b))
	}
	for i := 0; i < int(n) && r.err == nil; i++ {
		k := r.u8("op kind")
		obj := model.Obj(r.str("op object"))
		val := r.val("op value")
		switch k {
		case wireOpRead:
			rec.Ops = append(rec.Ops, model.Read(obj, val))
		case wireOpWrite:
			rec.Ops = append(rec.Ops, model.Write(obj, val))
		default:
			return rec, fmt.Errorf("wal: unknown op kind %d in commit record", k)
		}
	}
	return rec, r.done("commit record")
}

func decodeInstallBody(b []byte) (model.Obj, storage.Version, error) {
	r := &byteReader{b: b}
	x := model.Obj(r.str("install object"))
	v := storage.Version{
		Val:    r.val("install value"),
		TS:     r.u64("install ts"),
		Writer: r.str("install writer"),
		Meta:   r.u64("install meta"),
	}
	return x, v, r.done("install record")
}

// encodeSnapshot renders the snapshot document for the given latest
// versions. Entries are emitted in map order — recovery rebuilds a
// map, so order is irrelevant, and the trailing CRC covers whatever
// order was written.
func encodeSnapshot(latest map[model.Obj]storage.Version, maxTS, lastLSN uint64) []byte {
	b := make([]byte, 0, 32+48*len(latest))
	b = append(b, snapMagic...)
	body := make([]byte, 0, 24+48*len(latest))
	body = appendUint64(body, lastLSN)
	body = appendUint64(body, maxTS)
	body = appendUint32(body, uint32(len(latest)))
	for x, v := range latest {
		body = append(body, encodeInstallBody(x, v)...)
	}
	b = append(b, body...)
	return appendUint32(b, crc32.Checksum(body, castagnoli))
}

// decodeSnapshot parses and CRC-verifies a snapshot document.
func decodeSnapshot(b []byte) (latest []storage.Write, maxTS, lastLSN uint64, err error) {
	if len(b) < len(snapMagic)+20 || string(b[:len(snapMagic)]) != snapMagic {
		return nil, 0, 0, fmt.Errorf("wal: snapshot: bad magic")
	}
	body, crcBytes := b[len(snapMagic):len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(crcBytes) {
		return nil, 0, 0, fmt.Errorf("wal: snapshot: CRC mismatch")
	}
	r := &byteReader{b: body}
	lastLSN = r.u64("snapshot lsn")
	maxTS = r.u64("snapshot maxTS")
	n := r.u32("snapshot entry count")
	for i := 0; i < int(n) && r.err == nil; i++ {
		x := model.Obj(r.str("snapshot object"))
		v := storage.Version{
			Val:    r.val("snapshot value"),
			TS:     r.u64("snapshot ts"),
			Writer: r.str("snapshot writer"),
			Meta:   r.u64("snapshot meta"),
		}
		latest = append(latest, storage.Write{Obj: x, Version: v})
	}
	if derr := r.done("snapshot"); derr != nil {
		return nil, 0, 0, derr
	}
	return latest, maxTS, lastLSN, nil
}
