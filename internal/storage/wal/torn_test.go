package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sian/internal/model"
	"sian/internal/storage"
)

// buildPristineLog commits n counter increments into dir and returns
// the final segment's bytes. Each commit is one frame, so the log's
// valid prefixes are exactly the commit prefixes.
func buildPristineLog(t *testing.T, dir string, n int) []byte {
	t.Helper()
	d := mustOpen(t, testOpts(dir))
	counterChain(t, d, 1, n)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wal-00000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// cloneDir copies the pristine log into a fresh directory with the
// final segment replaced by tail.
func cloneDir(t *testing.T, tail []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), tail, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// checkPrefixState opens dir and asserts the recovered state is a
// certified prefix of the counter chain: x's latest value equals the
// number of replayed commits (or x is absent when zero). Returns the
// number of commits recovered, or -1 when Open refused.
func checkPrefixState(t *testing.T, dir, label string) int64 {
	t.Helper()
	d, err := Open(testOpts(dir))
	if err != nil {
		return -1
	}
	defer d.Close()
	info := d.Recovery()
	if !info.Certified {
		t.Fatalf("%s: served uncertified state: %s", label, info.Verdict)
	}
	v, ok := d.Latest("x")
	switch {
	case info.Commits == 0 && ok:
		t.Fatalf("%s: zero commits replayed but x = %+v", label, v)
	case info.Commits > 0 && (!ok || int64(v.Val) != info.Commits || int64(v.TS) != info.Commits):
		t.Fatalf("%s: recovered x = %+v (ok=%v), want counter value %d", label, v, ok, info.Commits)
	}
	return info.Commits
}

// TestTornTailTruncation is the torn-write robustness property test:
// for EVERY byte offset of the final segment, a log truncated at that
// offset recovers to a certified prefix of the committed chain —
// recovery stops at the last valid frame and never serves uncertified
// state. It also pins the accounting: TruncatedBytes is exactly the
// dropped tail, and the next Open sees a clean log.
func TestTornTailTruncation(t *testing.T) {
	t.Parallel()
	const n = 12
	pristine := buildPristineLog(t, t.TempDir(), n)

	// Frame boundaries of the pristine segment, for the expected
	// commit count at each truncation offset.
	boundaries := []int{len(segMagic)}
	off := len(segMagic)
	for off < len(pristine) {
		flen, payload, why := nextFrame(pristine[off:])
		if payload == nil {
			t.Fatalf("pristine log has invalid frame at %d: %s", off, why)
		}
		off += flen
		boundaries = append(boundaries, off)
	}
	if got := len(boundaries) - 1; got != n {
		t.Fatalf("pristine log holds %d frames, want %d", got, n)
	}

	for cut := 0; cut <= len(pristine); cut++ {
		dir := cloneDir(t, pristine[:cut])
		label := fmt.Sprintf("cut=%d", cut)
		commits := checkPrefixState(t, dir, label)
		if commits < 0 {
			t.Fatalf("%s: Open refused a truncated log", label)
		}
		// Exactly the complete frames before the cut survive.
		want := int64(0)
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				want = int64(i)
			}
		}
		if commits != want {
			t.Fatalf("%s: recovered %d commits, want %d", label, commits, want)
		}
		// A second recovery of the truncated directory is clean: the
		// torn tail was physically dropped.
		d, err := Open(testOpts(dir))
		if err != nil {
			t.Fatalf("%s: second Open: %v", label, err)
		}
		if info := d.Recovery(); info.TruncatedBytes != 0 || info.Commits != want {
			d.Close()
			t.Fatalf("%s: second recovery = %+v, want clean with %d commits", label, info, want)
		}
		d.Close()
	}
}

// TestCorruptTailByteFlip flips every byte of the final segment in
// turn: recovery must either stop at the corruption (a certified
// prefix) or refuse outright — never serve a corrupt frame. A flip in
// an earlier frame's bytes makes that frame invalid, so everything
// from it on is dropped.
func TestCorruptTailByteFlip(t *testing.T) {
	t.Parallel()
	const n = 6
	pristine := buildPristineLog(t, t.TempDir(), n)
	for i := 0; i < len(pristine); i++ {
		corrupt := append([]byte(nil), pristine...)
		corrupt[i] ^= 0x40
		dir := cloneDir(t, corrupt)
		commits := checkPrefixState(t, dir, fmt.Sprintf("flip=%d", i))
		if commits > int64(n) {
			t.Fatalf("flip=%d: recovered %d commits from an %d-commit log", i, commits, n)
		}
	}
}

// TestTornMultiSegment pins torn-tail handling with a snapshot in
// play: truncating the *final* segment of a rotated log still recovers
// certified, while corruption in a non-final segment refuses.
func TestTornMultiSegment(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SnapshotEvery = 64 // never triggers: multiple segments come from reopen cycles
	d := mustOpen(t, opts)
	counterChain(t, d, 1, 10)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d = mustOpen(t, testOpts(dir)) // opens segment 2
	counterChain(t, d, 11, 20)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	seg2 := filepath.Join(dir, "wal-00000002.log")
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final segment mid-way: certified prefix.
	if err := os.Truncate(seg2, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, testOpts(dir))
	info := re.Recovery()
	if !info.Certified || info.Commits != 19 || info.TruncatedBytes == 0 {
		re.Close()
		t.Fatalf("torn final segment: recovery = %+v", info)
	}
	if v, _ := re.Latest("x"); v.Val != 19 {
		re.Close()
		t.Fatalf("torn final segment: x = %+v", v)
	}
	re.Close()

	// Corrupt the middle of a NON-final segment: unexplainable (it
	// was fsynced before rotation), so Open refuses.
	seg1 := filepath.Join(dir, "wal-00000001.log")
	data, err = os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testOpts(dir)); err == nil {
		t.Fatal("Open served a log with a corrupt interior segment")
	}
}

// TestWriterMetaRoundTrip pins the install-record codec end to end
// through a real file (not just in memory).
func TestWriterMetaRoundTrip(t *testing.T) {
	t.Parallel()
	want := storage.Version{Val: -5, TS: 9, Writer: "w\x00éird", Meta: ^uint64(0)}
	x, v, err := decodeInstallBody(encodeInstallBody(model.Obj("k\nj"), want))
	if err != nil {
		t.Fatal(err)
	}
	if x != "k\nj" || v != want {
		t.Errorf("round trip: %q %+v", x, v)
	}
}
