// Package wal is the durable storage driver: the in-memory store of
// storage/mem behind a write-ahead log, opened with Open and reached
// through the storage.Driver interface.
//
// Commits are made durable before they are visible. The SI engine's
// commit window (storage.Locked) stages the transaction's commit
// record via LogCommit; Unlock appends the length-prefixed, CRC-framed
// record while the window's shard locks are still held — so per-object
// record order in the log matches installed timestamp order — releases
// the shards, and returns only after the record is fsynced. Syncs are
// grouped: concurrent windows append under one mutex and one fsync
// covers every record appended before it, so the fsync cost amortises
// across overlapping commits. The engine publishes a commit timestamp
// only after Unlock returns, which yields the crash guarantee: an
// acknowledged (published) commit is durable, and — because timestamps
// publish strictly in order — so is every commit before it. What a
// crash can lose is only un-acknowledged tails that no reader ever
// observed.
//
// Recovery (Open on a non-empty directory) replays the snapshot and
// the log segments, stopping at the first torn or corrupt frame of the
// final segment, and streams every replayed commit — full op list,
// reads included — through internal/monitor. Startup thereby
// *certifies* that the recovered state is reachable by an SI execution
// (the paper's Theorem 8/9 arrival-order witness machinery, the same
// code path the online monitor uses); a negative verdict refuses to
// open and reports the witness cycle. See DESIGN.md §12 for why
// monitor-replay certification of the log implies the recovered state
// is SI.
//
// Periodically (Options.SnapshotEvery records) the driver rotates to a
// fresh segment, captures a commit-atomic snapshot of the store's
// latest versions (mem.SnapshotLatest holds every shard lock at once),
// writes it to disk atomically (temp + fsync + rename + dir fsync) and
// deletes the now-covered segments. Replay is conditional on a
// per-object "already newer" check, so a crash anywhere in that
// sequence — before the rename, between rename and deletion — recovers
// correctly: records also covered by the snapshot are skipped, records
// not covered are replayed.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/monitor"
	"sian/internal/obs"
	"sian/internal/obs/txtrace"
	"sian/internal/storage"
	"sian/internal/storage/mem"
)

// Options parameterises Open. Only Dir is required.
type Options struct {
	// Dir is the log directory (created if absent): segment files
	// wal-NNNNNNNN.log plus at most one snapshot file.
	Dir string
	// NoSync disables fsync entirely (tests and throwaway data): the
	// log is still written, but a machine crash may lose or tear its
	// tail. Process-exit durability is unaffected.
	NoSync bool
	// SnapshotEvery triggers snapshot + log truncation after this many
	// appended records. Zero defaults to 65536; negative disables
	// snapshotting (the log grows without bound).
	SnapshotEvery int
	// SkipCertify disables monitor-replay certification during
	// recovery (replay still runs; the log is still applied).
	SkipCertify bool
	// Model is the consistency model recovery certifies against;
	// zero means depgraph.SI.
	Model depgraph.Model
	// Window bounds the recovery monitor's live window (bounded
	// memory for long logs — the monitor's dense relations are
	// quadratic in the window). Zero defaults to 62: the checker
	// enumerates per-object write orders with a 64-bit mask, and 62
	// live transactions + the one being certified + the init frontier
	// is exactly 64 writers when every transaction hits one hot
	// object, so the default can never go inconclusive on writer
	// count. The verdict stays one-sidedly sound after window
	// collapses (certified ⇒ the full log is a member).
	Window int
	// Budget bounds each slow-path certification during recovery
	// replay, as check.Options.Budget. Zero means the check default.
	Budget int
	// InitValue is the value every object holds before any write,
	// passed to the recovery monitor.
	InitValue model.Value
	// Metrics receives the driver's wal_* series. Nil disables.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 65536
	}
	if o.Window == 0 {
		o.Window = 62
	}
	if o.Model == depgraph.ModelInvalid {
		o.Model = depgraph.SI
	}
	return o
}

// RecoveryInfo summarises what Open found and replayed.
type RecoveryInfo struct {
	// SnapshotObjects is the number of objects seeded from the
	// snapshot file (0 when none existed).
	SnapshotObjects int
	// Segments is the number of log segment files replayed.
	Segments int
	// Records / Skipped count replayed log records: Skipped records
	// were already covered by the snapshot (per-object conditional
	// replay), Records were applied.
	Records int64
	Skipped int64
	// Commits is the number of applied commit records streamed
	// through the recovery monitor.
	Commits int64
	// TruncatedBytes is the size of the torn/corrupt tail dropped
	// from the final segment (0 for a clean log).
	TruncatedBytes int64
	// MaxTS and LastLSN are the frontier after replay.
	MaxTS   uint64
	LastLSN uint64
	// Certified reports the monitor verdict: the replayed commit
	// stream is a member of the configured model (always false when
	// certification was skipped, with Verdict saying so).
	Certified bool
	// Verdict is the human-readable certification summary.
	Verdict string
	// Violations carries the monitor's anomaly reports when
	// certification failed (witness cycle included).
	Violations []monitor.Violation
}

// CertifyError is returned by Open when recovery replay fails
// certification: the on-disk state is *not* explainable as an SI
// execution, and the driver refuses to serve it.
type CertifyError struct {
	Info RecoveryInfo
}

func (e *CertifyError) Error() string {
	msg := "wal: recovery refused: " + e.Info.Verdict
	for _, v := range e.Info.Violations {
		msg += "\n  " + v.String()
	}
	return msg
}

// Driver is the write-ahead-logged storage driver. Create with Open;
// it implements storage.Driver, storage.Recovered, and its commit
// windows implement storage.CommitLogger and storage.DurableWindow.
type Driver struct {
	opts  Options
	store *mem.Store
	dir   *os.File // open handle on the log directory, for dir fsyncs

	// mu guards the append path: the current segment file, its
	// buffered writer, the LSN counter and rotation.
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	segIndex uint64
	lsn      uint64 // last appended LSN
	closed   bool
	ioErr    error // first append-path write error; poisons the driver
	// retired holds previous segment files, kept open until Close so
	// a concurrent group-sync never races a file close.
	retired []*os.File
	// recsSinceSnap counts records appended since the last snapshot.
	recsSinceSnap int

	// syncMu guards the group-fsync state; syncCond wakes waiters
	// when a sync round completes.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	synced   uint64 // every LSN ≤ synced is durable
	syncing  bool
	syncErr  error

	snapshotting atomic.Bool
	snapErr      atomic.Pointer[string]
	lastSyncNS   atomic.Int64
	wg           sync.WaitGroup

	recovery RecoveryInfo

	cAppends   *obs.Counter
	cSyncs     *obs.Counter
	cSnapshots *obs.Counter
	gAppended  *obs.Gauge
	gSynced    *obs.Gauge
	hSyncNS    *obs.Histogram
}

// Stats is a point-in-time view of the driver's durability state, for
// health endpoints: the append/sync LSN gap is the fsync lag.
type Stats struct {
	// AppendedLSN is the last log sequence number handed out;
	// SyncedLSN the highest known durable. Appended − Synced is the
	// number of records currently awaiting fsync.
	AppendedLSN uint64
	SyncedLSN   uint64
	// LastSyncUnixNano is the wall clock of the last completed fsync
	// round (0 before the first; always advancing under NoSync).
	LastSyncUnixNano int64
	// Segment is the current segment index.
	Segment uint64
	// SnapshotError is the most recent background-snapshot failure
	// ("" when none): non-fatal (the log retains everything) but
	// worth surfacing, since the log stops truncating.
	SnapshotError string
}

// Stats returns the driver's current durability counters.
func (d *Driver) Stats() Stats {
	d.mu.Lock()
	appended, seg := d.lsn, d.segIndex
	d.mu.Unlock()
	d.syncMu.Lock()
	synced := d.synced
	d.syncMu.Unlock()
	st := Stats{
		AppendedLSN:      appended,
		SyncedLSN:        synced,
		LastSyncUnixNano: d.lastSyncNS.Load(),
		Segment:          seg,
	}
	if p := d.snapErr.Load(); p != nil {
		st.SnapshotError = *p
	}
	return st
}

// Recovery returns what Open found and certified.
func (d *Driver) Recovery() RecoveryInfo { return d.recovery }

// RecoveredMaxTS implements storage.Recovered: the highest commit
// timestamp present after replay, for seeding the engine's allocator.
func (d *Driver) RecoveredMaxTS() uint64 { return d.recovery.MaxTS }

// Mem returns the in-memory store the log materialises into, for
// tests that assert on raw version chains.
func (d *Driver) Mem() *mem.Store { return d.store }

// Open creates or recovers a write-ahead-logged driver in opts.Dir.
// On a non-empty directory it replays snapshot + segments, certifies
// the replayed commit stream (unless opts.SkipCertify), and returns a
// *CertifyError if the log is not a member of the configured model.
func Open(opts Options) (*Driver, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	d := &Driver{opts: opts, store: mem.New()}
	d.syncCond = sync.NewCond(&d.syncMu)
	reg := opts.Metrics
	d.cAppends = reg.Counter("wal_appends_total")
	d.cSyncs = reg.Counter("wal_syncs_total")
	d.cSnapshots = reg.Counter("wal_snapshots_total")
	d.gAppended = reg.Gauge("wal_appended_lsn")
	d.gSynced = reg.Gauge("wal_synced_lsn")
	d.hSyncNS = reg.Histogram("wal_sync_ns")

	dir, err := os.Open(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	d.dir = dir
	if err := d.recover(); err != nil {
		dir.Close()
		return nil, err
	}
	if err := d.openFreshSegment(); err != nil {
		dir.Close()
		return nil, err
	}
	d.gAppended.Set(int64(d.lsn))
	d.gSynced.Set(int64(d.lsn))
	return d, nil
}

// openFreshSegment starts a new segment after recovery, numbered past
// every existing one, and makes its existence durable.
func (d *Driver) openFreshSegment() error {
	d.segIndex++
	path := d.segmentPath(d.segIndex)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if !d.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := d.dir.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	d.f = f
	d.bw = bufio.NewWriterSize(f, 1<<16)
	return nil
}

func (d *Driver) segmentPath(idx uint64) string {
	return filepath.Join(d.opts.Dir, fmt.Sprintf("wal-%08d.log", idx))
}

func (d *Driver) snapshotPath() string { return filepath.Join(d.opts.Dir, "snapshot") }

// append writes one frame under the log mutex and returns its LSN.
// Callers still hold the window's shard locks when appending commit
// records, so per-object record order matches timestamp order.
func (d *Driver) append(kind byte, body []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	if d.ioErr != nil {
		return 0, d.ioErr
	}
	d.lsn++
	lsn := d.lsn
	if _, err := d.bw.Write(encodeFrame(kind, lsn, body)); err != nil {
		d.ioErr = fmt.Errorf("wal: append: %w", err)
		return 0, d.ioErr
	}
	d.cAppends.Inc()
	d.gAppended.Set(int64(lsn))
	d.recsSinceSnap++
	if d.opts.SnapshotEvery > 0 && d.recsSinceSnap >= d.opts.SnapshotEvery &&
		d.snapshotting.CompareAndSwap(false, true) {
		d.wg.Add(1)
		go d.snapshot()
	}
	return lsn, nil
}

// appendGroup writes one commit frame per body under a single hold of
// the log mutex, so a group commit's records are contiguous in the
// log, and returns the LSN of the group's last frame. One later
// syncTo at that LSN makes the whole group durable with one fsync.
func (d *Driver) appendGroup(bodies [][]byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	if d.ioErr != nil {
		return 0, d.ioErr
	}
	var lsn uint64
	for _, body := range bodies {
		d.lsn++
		lsn = d.lsn
		if _, err := d.bw.Write(encodeFrame(recCommit, lsn, body)); err != nil {
			d.ioErr = fmt.Errorf("wal: append: %w", err)
			return 0, d.ioErr
		}
		d.cAppends.Inc()
		d.recsSinceSnap++
	}
	d.gAppended.Set(int64(lsn))
	if d.opts.SnapshotEvery > 0 && d.recsSinceSnap >= d.opts.SnapshotEvery &&
		d.snapshotting.CompareAndSwap(false, true) {
		d.wg.Add(1)
		go d.snapshot()
	}
	return lsn, nil
}

// syncTo blocks until every record with LSN ≤ target is durable
// (group commit: whichever waiter arrives first while no sync is in
// flight performs one flush+fsync covering everything appended so
// far; the rest just wait). Under NoSync it only advances the
// bookkeeping.
func (d *Driver) syncTo(target uint64) error {
	if d.opts.NoSync {
		d.syncMu.Lock()
		if target > d.synced {
			d.synced = target
			d.gSynced.Set(int64(target))
		}
		d.syncMu.Unlock()
		d.lastSyncNS.Store(time.Now().UnixNano())
		return nil
	}
	d.syncMu.Lock()
	for d.synced < target && d.syncErr == nil && d.syncing {
		d.syncCond.Wait()
	}
	if err := d.syncErr; err != nil {
		d.syncMu.Unlock()
		return err
	}
	if d.synced >= target {
		d.syncMu.Unlock()
		return nil
	}
	d.syncing = true
	d.syncMu.Unlock()

	// One sync round, covering every record appended before the
	// flush. upTo is read before flushing: the flush covers at least
	// those records, possibly more.
	start := time.Now()
	d.mu.Lock()
	upTo := d.lsn
	err := d.bw.Flush()
	if err != nil && d.ioErr == nil {
		d.ioErr = err
	} else if d.ioErr != nil {
		err = d.ioErr
	}
	f := d.f
	d.mu.Unlock()
	if err == nil {
		err = f.Sync()
	}
	d.cSyncs.Inc()
	d.hSyncNS.Observe(time.Since(start).Nanoseconds())

	d.syncMu.Lock()
	if err != nil {
		d.syncErr = fmt.Errorf("wal: sync: %w", err)
		err = d.syncErr
	} else if upTo > d.synced {
		d.synced = upTo
		d.gSynced.Set(int64(upTo))
		d.lastSyncNS.Store(time.Now().UnixNano())
	}
	d.syncing = false
	d.syncCond.Broadcast()
	d.syncMu.Unlock()
	return err
}

// snapshot runs in the background after a rotation trigger: rotate to
// a fresh segment, capture a commit-atomic cut of the store, write it
// atomically, then delete the covered segments. Failures are recorded
// (Stats.SnapshotError) but non-fatal — the log keeps everything.
func (d *Driver) snapshot() {
	defer d.wg.Done()
	defer d.snapshotting.Store(false)
	if err := d.snapshotOnce(); err != nil {
		msg := err.Error()
		d.snapErr.Store(&msg)
		return
	}
	d.snapErr.Store(nil)
	d.cSnapshots.Inc()
}

func (d *Driver) snapshotOnce() error {
	// 1. Rotate under the append mutex: flush + sync the current
	// segment, retire it, start the next one. After this, every
	// record in retired segments is durable and every new append goes
	// to the new segment.
	d.mu.Lock()
	if d.closed || d.ioErr != nil {
		err := d.ioErr
		d.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("wal: closed")
		}
		return err
	}
	if err := d.bw.Flush(); err != nil {
		d.ioErr = err
		d.mu.Unlock()
		return err
	}
	if !d.opts.NoSync {
		if err := d.f.Sync(); err != nil {
			d.mu.Unlock()
			return err
		}
	}
	rotatedLSN := d.lsn
	oldSegs := make([]string, 0, 4)
	for i := uint64(1); i <= d.segIndex; i++ {
		if p := d.segmentPath(i); fileExists(p) {
			oldSegs = append(oldSegs, p)
		}
	}
	d.retired = append(d.retired, d.f)
	d.segIndex++
	path := d.segmentPath(d.segIndex)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		// Roll the rotation back: keep appending to the old segment.
		d.retired = d.retired[:len(d.retired)-1]
		d.segIndex--
		d.mu.Unlock()
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		d.retired = d.retired[:len(d.retired)-1]
		d.segIndex--
		d.mu.Unlock()
		return err
	}
	d.f = f
	d.bw = bufio.NewWriterSize(f, 1<<16)
	d.recsSinceSnap = 0
	d.mu.Unlock()

	// Everything rotated out is durable.
	d.syncMu.Lock()
	if rotatedLSN > d.synced {
		d.synced = rotatedLSN
		d.gSynced.Set(int64(rotatedLSN))
		d.lastSyncNS.Store(time.Now().UnixNano())
	}
	d.syncMu.Unlock()

	// 2. Commit-atomic cut of the store. Commits racing the cut may
	// land in both the snapshot and the new segment; per-object
	// conditional replay skips the duplicates on recovery.
	latest, maxTS := d.store.SnapshotLatest()

	// 3. Atomic snapshot write: temp, fsync, rename, dir fsync.
	doc := encodeSnapshot(latest, maxTS, rotatedLSN)
	tmp := d.snapshotPath() + ".tmp"
	if err := writeFileSync(tmp, doc, !d.opts.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.snapshotPath()); err != nil {
		return err
	}
	if !d.opts.NoSync {
		if err := d.dir.Sync(); err != nil {
			return err
		}
	}

	// 4. The snapshot covers every rotated-out segment; delete them.
	for _, p := range oldSegs {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	if !d.opts.NoSync {
		return d.dir.Sync()
	}
	return nil
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// Close flushes and syncs the log, then closes every file. The driver
// must not be used afterwards.
func (d *Driver) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	last := d.lsn
	d.mu.Unlock()
	err := d.syncTo(last)
	d.wg.Wait() // let an in-flight snapshot finish
	d.mu.Lock()
	d.closed = true
	flushErr := d.bw.Flush()
	if err == nil {
		err = flushErr
	}
	if !d.opts.NoSync {
		if serr := d.f.Sync(); err == nil {
			err = serr
		}
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	for _, f := range d.retired {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	d.retired = nil
	d.mu.Unlock()
	if cerr := d.dir.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- storage.Driver ---

// Install appends a version durably: the record is logged inside the
// object's shard lock (ordering) and fsynced before Install returns.
func (d *Driver) Install(x model.Obj, v storage.Version) error {
	w := d.LockObjs([]model.Obj{x}).(*window)
	err := w.Install(x, v)
	w.Unlock()
	if err != nil {
		return err
	}
	_, serr := w.Durable()
	return serr
}

// InstallBatch installs and logs every write under one multi-shard
// window, then fsyncs once.
func (d *Driver) InstallBatch(ws []storage.Write) error {
	if len(ws) == 0 {
		return nil
	}
	objs := make([]model.Obj, len(ws))
	for i, wr := range ws {
		objs[i] = wr.Obj
	}
	w := d.LockObjs(objs).(*window)
	var err error
	for _, wr := range ws {
		if err = w.Install(wr.Obj, wr.Version); err != nil {
			break
		}
	}
	w.Unlock()
	if err != nil {
		return err
	}
	_, serr := w.Durable()
	return serr
}

func (d *Driver) ReadAt(x model.Obj, ts uint64) (storage.Version, bool) {
	return d.store.ReadAt(x, ts)
}

func (d *Driver) ReadAtBatch(objs []model.Obj, ts uint64) ([]storage.Version, []bool) {
	return d.store.ReadAtBatch(objs, ts)
}

func (d *Driver) Latest(x model.Obj) (storage.Version, bool) { return d.store.Latest(x) }
func (d *Driver) LatestTS(x model.Obj) uint64                { return d.store.LatestTS(x) }
func (d *Driver) LatestTSBatch(objs []model.Obj) []uint64    { return d.store.LatestTSBatch(objs) }

// Compact forwards to the in-memory store. The log is unaffected:
// truncation happens via snapshots, so recovery may resurrect
// compacted versions (harmless — compaction is a cache eviction here,
// not a semantic boundary).
func (d *Driver) Compact(watermark uint64) int { return d.store.GC(watermark) }

func (d *Driver) Objects() []model.Obj         { return d.store.Objects() }
func (d *Driver) VersionCount(x model.Obj) int { return d.store.VersionCount(x) }

// LockObjs opens a durable commit window over the write set.
func (d *Driver) LockObjs(objs []model.Obj) storage.Locked {
	return &window{d: d, inner: d.store.LockObjs(objs)}
}

// LockBatch opens a durable group-commit window over the union write
// set of a batch of disjoint commits: the records staged via
// LogCommitBatch are appended contiguously inside Unlock — while the
// union's shard locks are still held, so per-object log order matches
// timestamp order — and one fsync covers the whole group.
func (d *Driver) LockBatch(objs []model.Obj) storage.BatchLocked {
	return &window{d: d, inner: d.store.LockObjs(objs)}
}

// window is the durable commit window: mem's multi-shard lock plus
// the staged log record. It implements storage.Locked,
// storage.CommitLogger, storage.DurableWindow and
// storage.TraceAttacher.
type window struct {
	d     *Driver
	inner *mem.Locked
	// staged is the engine's commit record (LogCommit); stagedBatch a
	// group commit's record set (LogCommitBatch); installs collects
	// raw installs for windows driven without either.
	staged      *storage.CommitRecord
	stagedBatch []storage.CommitRecord
	installs    []storage.Write
	trace       *txtrace.Trace
	lsn         uint64
	err         error
	unlocked    bool
}

// AttachTrace hands the window the transaction's trace; Unlock then
// marks the wal_append and fsync_wait stages on it, attributing the
// group fsync via the append/sync LSN gap.
func (w *window) AttachTrace(tr *txtrace.Trace) { w.trace = tr }

func (w *window) LatestTS(x model.Obj) uint64 { return w.inner.LatestTS(x) }

func (w *window) ReadAt(x model.Obj, ts uint64) (storage.Version, bool) {
	return w.inner.ReadAt(x, ts)
}

func (w *window) Install(x model.Obj, v storage.Version) error {
	if err := w.inner.Install(x, v); err != nil {
		return err
	}
	w.installs = append(w.installs, storage.Write{Obj: x, Version: v})
	return nil
}

// LogCommit stages the commit record; it subsumes the window's raw
// installs (the record's final writes are exactly what was installed).
func (w *window) LogCommit(rec storage.CommitRecord) {
	w.staged = &rec
}

// LogCommitBatch stages a group commit's records (ascending timestamp
// order); Unlock appends them as one contiguous frame group under a
// single log-mutex hold, and the group's durability is one fsync.
func (w *window) LogCommitBatch(recs []storage.CommitRecord) {
	w.stagedBatch = recs
}

// Unlock appends the staged record (or the raw installs) while the
// shard locks are still held, releases the shards, then joins the
// group fsync. When the window wrote nothing there is nothing to log
// and Unlock is just the release.
func (w *window) Unlock() {
	if w.unlocked {
		return
	}
	w.unlocked = true
	var last uint64
	var appendErr error
	var groupRecords int
	switch {
	case len(w.stagedBatch) > 0:
		bodies := make([][]byte, len(w.stagedBatch))
		for i, rec := range w.stagedBatch {
			bodies[i] = encodeCommitBody(rec)
		}
		groupRecords = len(bodies)
		last, appendErr = w.d.appendGroup(bodies)
	case w.staged != nil:
		last, appendErr = w.d.append(recCommit, encodeCommitBody(*w.staged))
	case len(w.installs) > 0:
		for _, wr := range w.installs {
			last, appendErr = w.d.append(recInstall, encodeInstallBody(wr.Obj, wr.Version))
			if appendErr != nil {
				break
			}
		}
	}
	if w.trace != nil && last > 0 {
		attrs := map[string]int64{"lsn": int64(last)}
		if groupRecords > 0 {
			attrs["group_records"] = int64(groupRecords)
		}
		w.trace.MarkAttrs(txtrace.StageWALAppend, attrs)
	}
	w.inner.Unlock()
	if appendErr != nil {
		w.err = appendErr
		return
	}
	if last > 0 {
		w.lsn = last
		// The append/sync LSN gap at entry is the group-commit
		// attribution: how many already-appended records the fsync this
		// window joins (or starts) will cover along with ours.
		var syncedBefore uint64
		if w.trace != nil {
			syncedBefore = w.d.syncedLSN()
		}
		w.err = w.d.syncTo(last)
		if w.trace != nil {
			w.trace.MarkAttrs(txtrace.StageFsyncWait, map[string]int64{
				"lsn":             int64(last),
				"synced_at_enter": int64(syncedBefore),
				"group_gap":       int64(last) - int64(syncedBefore),
			})
		}
	}
}

// syncedLSN reads the durable watermark.
func (d *Driver) syncedLSN() uint64 {
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	return d.synced
}

// Durable reports the fsynced LSN of the window's record, valid after
// Unlock. A sync error means the installs are visible in memory but
// not durable.
func (w *window) Durable() (uint64, error) { return w.lsn, w.err }
