package wal

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"sian/internal/model"
	"sian/internal/monitor"
	"sian/internal/obs/eventlog"
	"sian/internal/storage"
)

// recover rebuilds the in-memory store from the snapshot and the log
// segments, certifying the replayed commit stream along the way. On
// return d.store, d.lsn, d.segIndex, d.synced and d.recovery are
// populated; the caller opens a fresh segment for new appends.
//
// Replay is conditional per object — a record's version installs only
// if the object's current latest timestamp is older — which makes
// recovery insensitive to where exactly a crash fell in the
// snapshot/truncation sequence: segments whose records are also
// covered by the snapshot replay as no-ops. Because a commit window
// installs its whole write set under its shard locks and the snapshot
// cut holds every shard at once, a commit is either entirely inside or
// entirely outside the snapshot; "any object installed" therefore
// means "all installed", and exactly the applied commits are streamed
// to the monitor.
func (d *Driver) recover() error {
	// A leftover temp file is a snapshot that never renamed: dead.
	os.Remove(d.snapshotPath() + ".tmp")

	var mon *monitor.Monitor
	if !d.opts.SkipCertify {
		mon = monitor.New(monitor.Config{
			Model:     d.opts.Model,
			Window:    d.opts.Window,
			Budget:    d.opts.Budget,
			InitValue: d.opts.InitValue,
			Metrics:   d.opts.Metrics,
		})
	}
	var seq int64
	ingest := func(ev eventlog.Event) {
		if mon != nil {
			seq++
			ev.Seq = seq
			mon.Ingest(ev)
		}
	}

	// Snapshot. An unreadable or CRC-failing snapshot refuses
	// recovery outright: the segments it covered may already be
	// deleted, so ignoring it could silently lose acknowledged
	// commits.
	var snapLSN uint64
	if data, err := os.ReadFile(d.snapshotPath()); err == nil {
		writes, maxTS, lastLSN, derr := decodeSnapshot(data)
		if derr != nil {
			return fmt.Errorf("wal: snapshot unreadable, refusing recovery (its segments may already be truncated): %w", derr)
		}
		if err := d.store.InstallBatch(writes); err != nil {
			return fmt.Errorf("wal: snapshot replay: %w", err)
		}
		snapLSN = lastLSN
		d.recovery.SnapshotObjects = len(writes)
		d.recovery.MaxTS = maxTS
		d.recovery.LastLSN = lastLSN
		// The snapshot becomes the monitor's init frontier: one
		// synthetic init commit holding each object's final value, the
		// same absorption the online monitor applies to a history's
		// own init transaction.
		if mon != nil && len(writes) > 0 {
			base := eventlog.Event{Session: model.InitTransactionID, TxID: "snapshot"}
			ev := base
			ev.Kind = eventlog.Begin
			ingest(ev)
			for _, w := range writes {
				ev = base
				ev.Kind, ev.Obj, ev.Val = eventlog.Write, w.Obj, w.Version.Val
				ingest(ev)
			}
			ev = base
			ev.Kind, ev.Name = eventlog.Commit, model.InitTransactionID
			ingest(ev)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("wal: %w", err)
	}

	// Segments, in index order.
	segs, maxIdx, err := d.listSegments()
	if err != nil {
		return err
	}
	d.recovery.Segments = len(segs)
	d.segIndex = maxIdx
	sawCommit := false
	for i, idx := range segs {
		final := i == len(segs)-1
		if err := d.replaySegment(d.segmentPath(idx), final, snapLSN, &sawCommit, ingest); err != nil {
			return err
		}
	}
	if snapLSN > d.recovery.LastLSN {
		d.recovery.LastLSN = snapLSN
	}
	d.lsn = d.recovery.LastLSN
	d.synced = d.lsn

	// Certify. The monitor verdict is one-sidedly sound even after
	// window collapse: certified implies the full replayed stream is
	// a member of the model.
	if mon == nil {
		d.recovery.Verdict = "certification skipped"
		return nil
	}
	rep, merr := mon.Finish()
	d.recovery.Violations = rep.Violations
	certified := merr == nil && rep.Member && len(rep.Violations) == 0
	d.recovery.Certified = certified
	switch {
	case certified:
		d.recovery.Verdict = fmt.Sprintf("recovered state certified: %d replayed commits are a member of %s",
			d.recovery.Commits, d.opts.Model)
	case merr != nil:
		d.recovery.Verdict = fmt.Sprintf("certification inconclusive for %s: %v", d.opts.Model, merr)
	default:
		d.recovery.Verdict = fmt.Sprintf("replayed history is NOT a member of %s (%d violations)",
			d.opts.Model, len(rep.Violations))
	}
	if !certified {
		return &CertifyError{Info: d.recovery}
	}
	return nil
}

// listSegments returns the existing segment indices in ascending order
// plus the highest index ever used (so fresh segments never reuse a
// deleted predecessor's name).
func (d *Driver) listSegments() ([]uint64, uint64, error) {
	entries, err := os.ReadDir(d.opts.Dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	var maxIdx uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, idx)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, maxIdx, nil
}

// replaySegment applies one segment file. In the final segment a torn
// or corrupt frame truncates the file at the last valid frame (an
// un-fsynced tail was never acknowledged); anywhere else it is
// unexplainable corruption and recovery refuses.
func (d *Driver) replaySegment(path string, final bool, snapLSN uint64, sawCommit *bool, ingest func(eventlog.Event)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		if final {
			// A crash during segment creation tore the magic itself;
			// no record in this file was ever durable.
			d.recovery.TruncatedBytes += int64(len(data))
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			return nil
		}
		return fmt.Errorf("wal: %s: bad segment magic", path)
	}
	off := len(segMagic)
	for off < len(data) {
		rest := data[off:]
		frameLen, payload, why := nextFrame(rest)
		if payload == nil {
			if !final {
				return fmt.Errorf("wal: %s: corrupt frame at offset %d in non-final segment (%s)", path, off, why)
			}
			// Torn tail: drop it so the next append continues from a
			// valid frame boundary.
			d.recovery.TruncatedBytes += int64(len(data) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			return nil
		}
		if err := d.applyRecord(payload, snapLSN, sawCommit, ingest); err != nil {
			return fmt.Errorf("wal: %s: offset %d: %w", path, off, err)
		}
		off += frameLen
	}
	return nil
}

// nextFrame validates the frame at the head of b. It returns the full
// frame length and the payload, or a nil payload with the reason the
// frame is invalid (truncated or corrupt — the caller decides whether
// that is a torn tail or fatal).
func nextFrame(b []byte) (int, []byte, string) {
	if len(b) < frameHeaderLen {
		return 0, nil, "truncated header"
	}
	plen := int(beUint32(b))
	if plen < 9 { // kind + lsn minimum
		return 0, nil, "implausibly short payload"
	}
	if plen > maxFramePayload {
		return 0, nil, "implausibly long payload"
	}
	if len(b) < frameHeaderLen+plen {
		return 0, nil, "truncated payload"
	}
	payload := b[frameHeaderLen : frameHeaderLen+plen]
	if crcChecksum(payload) != beUint32(b[4:]) {
		return 0, nil, "CRC mismatch"
	}
	return frameHeaderLen + plen, payload, ""
}

// applyRecord replays one CRC-valid record. A record the snapshot
// already covers (by LSN, or per object by timestamp) is skipped.
func (d *Driver) applyRecord(payload []byte, snapLSN uint64, sawCommit *bool, ingest func(eventlog.Event)) error {
	kind, lsn, body := payload[0], beUint64(payload[1:]), payload[9:]
	if lsn > d.recovery.LastLSN {
		d.recovery.LastLSN = lsn
	}
	if lsn <= snapLSN {
		// Rotated out before the snapshot's cut: fully covered.
		d.recovery.Skipped++
		return nil
	}
	switch kind {
	case recCommit:
		rec, err := decodeCommitBody(body)
		if err != nil {
			return err
		}
		tx := model.NewTransaction(rec.TxID, rec.Ops...)
		installed := false
		for _, x := range tx.WriteSet() {
			if d.store.LatestTS(x) < rec.TS {
				v, _ := tx.FinalWrite(x)
				if err := d.store.Install(x, storage.Version{Val: v, TS: rec.TS}); err != nil {
					return err
				}
				installed = true
			}
		}
		if !installed {
			// A commit racing the snapshot cut: in the snapshot and in
			// the log; the snapshot (and its synthetic init feed)
			// already accounts for it.
			d.recovery.Skipped++
			return nil
		}
		d.recovery.Records++
		d.recovery.Commits++
		if rec.TS > d.recovery.MaxTS {
			d.recovery.MaxTS = rec.TS
		}
		name := ""
		if !*sawCommit && rec.Session == model.InitTransactionID {
			// The history's own initialisation commit leads the log:
			// name it so the monitor absorbs it as the frontier.
			name = model.InitTransactionID
		}
		*sawCommit = true
		base := eventlog.Event{Session: rec.Session, TxID: rec.TxID}
		ev := base
		ev.Kind = eventlog.Begin
		ingest(ev)
		for _, op := range rec.Ops {
			ev = base
			ev.Obj, ev.Val = op.Obj, op.Val
			if op.Kind == model.OpWrite {
				ev.Kind = eventlog.Write
			} else {
				ev.Kind = eventlog.Read
			}
			ingest(ev)
		}
		ev = base
		ev.Kind, ev.Name = eventlog.Commit, name
		ingest(ev)
	case recInstall:
		x, v, err := decodeInstallBody(body)
		if err != nil {
			return err
		}
		if d.store.LatestTS(x) >= v.TS {
			d.recovery.Skipped++
			return nil
		}
		if err := d.store.Install(x, v); err != nil {
			return err
		}
		d.recovery.Records++
		if v.TS > d.recovery.MaxTS {
			d.recovery.MaxTS = v.TS
		}
		// A raw install is an atomic single-write transaction; feed it
		// as one so certification stays meaningful for mixed logs.
		*sawCommit = true
		base := eventlog.Event{Session: "wal:install", TxID: fmt.Sprintf("install/%d", lsn)}
		ev := base
		ev.Kind = eventlog.Begin
		ingest(ev)
		ev = base
		ev.Kind, ev.Obj, ev.Val = eventlog.Write, x, v.Val
		ingest(ev)
		ev = base
		ev.Kind = eventlog.Commit
		ingest(ev)
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}
