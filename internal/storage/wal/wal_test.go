package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sian/internal/model"
	"sian/internal/storage"
	"sian/internal/storage/drivertest"
)

// testOpts returns fast options for a throwaway directory: no fsync,
// small certification window.
func testOpts(dir string) Options {
	return Options{Dir: dir, NoSync: true, Window: 64}
}

func mustOpen(t *testing.T, opts Options) *Driver {
	t.Helper()
	d, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return d
}

// TestDriverConformance runs the shared storage-driver suite against
// the WAL driver: same semantics as the in-memory driver, plus a log.
func TestDriverConformance(t *testing.T) {
	t.Parallel()
	drivertest.Run(t, func(t *testing.T) storage.Driver {
		return mustOpen(t, testOpts(t.TempDir()))
	})
}

// commitThrough simulates the engine's durable commit: lock the write
// set, install, stage the commit record, unlock (append + sync).
func commitThrough(t *testing.T, d *Driver, rec storage.CommitRecord) uint64 {
	t.Helper()
	tx := model.NewTransaction(rec.TxID, rec.Ops...)
	objs := tx.WriteSet()
	w := d.LockObjs(objs)
	for _, x := range objs {
		v, _ := tx.FinalWrite(x)
		if err := w.Install(x, storage.Version{Val: v, TS: rec.TS}); err != nil {
			t.Fatalf("install %s@%d: %v", x, rec.TS, err)
		}
	}
	w.(storage.CommitLogger).LogCommit(rec)
	w.Unlock()
	lsn, err := w.(storage.DurableWindow).Durable()
	if err != nil {
		t.Fatalf("durable: %v", err)
	}
	if lsn == 0 {
		t.Fatal("commit window reported LSN 0")
	}
	return lsn
}

// counterChain builds the canonical test workload: n read-modify-write
// commits on one object ("r x i-1, w x i" at timestamp i), an SI
// history by construction.
func counterChain(t *testing.T, d *Driver, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		commitThrough(t, d, storage.CommitRecord{
			TS:      uint64(i),
			Session: "s1",
			TxID:    fmt.Sprintf("t%d", i),
			Ops: []model.Op{
				model.Read("x", model.Value(i-1)),
				model.Write("x", model.Value(i)),
			},
		})
	}
}

// TestReopenReplaysLog pins the basic durability loop: commit, close,
// reopen, and the recovered state is certified and complete.
func TestReopenReplaysLog(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	const n = 25
	var lastLSN uint64
	for i := 1; i <= n; i++ {
		lsn := commitThrough(t, d, storage.CommitRecord{
			TS: uint64(i), Session: "s1", TxID: fmt.Sprintf("t%d", i),
			Ops: []model.Op{
				model.Read("x", model.Value(i-1)),
				model.Write("x", model.Value(i)),
				model.Write("y", model.Value(-i)),
			},
		})
		if lsn <= lastLSN {
			t.Fatalf("LSN not monotonic: %d after %d", lsn, lastLSN)
		}
		lastLSN = lsn
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	info := re.Recovery()
	if !info.Certified {
		t.Fatalf("recovery not certified: %s", info.Verdict)
	}
	if info.Commits != n {
		t.Errorf("replayed %d commits, want %d", info.Commits, n)
	}
	if info.MaxTS != n {
		t.Errorf("recovered MaxTS %d, want %d", info.MaxTS, n)
	}
	if re.RecoveredMaxTS() != n {
		t.Errorf("RecoveredMaxTS %d, want %d", re.RecoveredMaxTS(), n)
	}
	if v, ok := re.Latest("x"); !ok || v.Val != n || v.TS != n {
		t.Errorf("Latest(x) = %+v, %v; want val %d at ts %d", v, ok, n, n)
	}
	if v, ok := re.Latest("y"); !ok || v.Val != -n {
		t.Errorf("Latest(y) = %+v, %v; want val %d", v, ok, -n)
	}
	if got := re.VersionCount("x"); got != n {
		t.Errorf("VersionCount(x) = %d, want %d", got, n)
	}
	// And the reopened driver keeps accepting commits past the
	// recovered frontier.
	commitThrough(t, re, storage.CommitRecord{
		TS: n + 1, Session: "s1", TxID: "post",
		Ops: []model.Op{model.Write("x", model.Value(n+1))},
	})
	if v, _ := re.Latest("x"); v.TS != n+1 {
		t.Errorf("post-recovery commit not visible: %+v", v)
	}
}

// TestBatchGroupSurvivesReopen pins the group-commit durability path:
// a batch of disjoint commits staged via LogCommitBatch is appended as
// one contiguous record group covered by one sync, its records replay
// individually on recovery, and the recovered stream still certifies
// SI. Fsync accounting is the acceptance observable: one batch of n
// commits must cost at most one sync, i.e. strictly fewer syncs than
// commits.
func TestBatchGroupSurvivesReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// Real fsyncs, so the syncs-vs-commits accounting is meaningful.
	d := mustOpen(t, Options{Dir: dir, Window: 64})

	reg := d.cSyncs // wal_syncs_total handle resolved at Open
	syncsBefore := reg.Value()
	const members = 8
	union := make([]model.Obj, 0, members)
	recs := make([]storage.CommitRecord, 0, members)
	for i := 0; i < members; i++ {
		union = append(union, model.Obj(fmt.Sprintf("g%d", i)))
	}
	w := d.LockBatch(union)
	for i, x := range union {
		ts := uint64(i + 1)
		if err := w.Install(x, storage.Version{Val: model.Value(i), TS: ts}); err != nil {
			t.Fatalf("install: %v", err)
		}
		recs = append(recs, storage.CommitRecord{
			TS: ts, Session: fmt.Sprintf("s%d", i), TxID: fmt.Sprintf("t%d", i),
			Ops: []model.Op{model.Write(x, model.Value(i))},
		})
	}
	w.LogCommitBatch(recs)
	w.Unlock()
	lsn, err := w.(storage.DurableWindow).Durable()
	if err != nil {
		t.Fatalf("durable: %v", err)
	}
	if lsn != uint64(members) {
		t.Errorf("group LSN = %d, want %d (one frame per member, contiguous)", lsn, members)
	}
	if syncs := reg.Value() - syncsBefore; syncs >= members {
		t.Errorf("batch of %d commits cost %d syncs; group fsync must cost fewer syncs than commits", members, syncs)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	info := re.Recovery()
	if !info.Certified {
		t.Fatalf("recovery not certified: %s", info.Verdict)
	}
	if info.Commits != members {
		t.Errorf("replayed %d commits, want %d (one record per batch member)", info.Commits, members)
	}
	if info.MaxTS != members {
		t.Errorf("recovered MaxTS %d, want %d", info.MaxTS, members)
	}
	for i, x := range union {
		v, ok := re.Latest(x)
		if !ok || v.Val != model.Value(i) || v.TS != uint64(i+1) {
			t.Errorf("Latest(%s) = %+v, %v; want val %d at ts %d", x, v, ok, i, i+1)
		}
	}
}

// TestRawInstallsSurviveReopen pins the non-engine append path: plain
// Install / InstallBatch calls are logged as install records with
// Writer and Meta preserved.
func TestRawInstallsSurviveReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	want := storage.Version{Val: 7, TS: 3, Writer: "w1", Meta: 42}
	if err := d.Install("a", want); err != nil {
		t.Fatal(err)
	}
	if err := d.InstallBatch([]storage.Write{
		{Obj: "b", Version: storage.Version{Val: 1, TS: 1}},
		{Obj: "b", Version: storage.Version{Val: 2, TS: 2, Meta: 9}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if !re.Recovery().Certified {
		t.Fatalf("recovery not certified: %s", re.Recovery().Verdict)
	}
	if v, ok := re.Latest("a"); !ok || v != want {
		t.Errorf("Latest(a) = %+v, want %+v", v, want)
	}
	if v, ok := re.Latest("b"); !ok || v.Val != 2 || v.Meta != 9 {
		t.Errorf("Latest(b) = %+v", v)
	}
}

// TestRecoveryRefusesNonSI hand-crafts a lost-update log — two
// transactions that both read x=0 and both write x — and asserts Open
// refuses to serve it: the replayed history is not SI, and the
// CertifyError carries the witness.
func TestRecoveryRefusesNonSI(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	records := [][]byte{
		encodeFrame(recCommit, 1, encodeCommitBody(storage.CommitRecord{
			TS: 1, Session: "a", TxID: "T1",
			Ops: []model.Op{model.Read("x", 0), model.Write("x", 1)},
		})),
		encodeFrame(recCommit, 2, encodeCommitBody(storage.CommitRecord{
			TS: 2, Session: "b", TxID: "T2",
			Ops: []model.Op{model.Read("x", 0), model.Write("x", 2)},
		})),
	}
	writeSegment(t, filepath.Join(dir, "wal-00000001.log"), records)

	_, err := Open(Options{Dir: dir, NoSync: true, Window: 64})
	var cerr *CertifyError
	if !errors.As(err, &cerr) {
		t.Fatalf("Open = %v, want *CertifyError", err)
	}
	if len(cerr.Info.Violations) == 0 {
		t.Fatal("CertifyError carries no violations")
	}
	if cerr.Info.Violations[0].Cycle == "" {
		t.Error("violation carries no witness cycle")
	}

	// The same log opens with certification disabled (the data is
	// still there, just not SI-certifiable).
	d, err := Open(Options{Dir: dir, NoSync: true, SkipCertify: true})
	if err != nil {
		t.Fatalf("SkipCertify Open: %v", err)
	}
	defer d.Close()
	if v, ok := d.Latest("x"); !ok || v.Val != 2 {
		t.Errorf("Latest(x) = %+v, %v", v, ok)
	}
}

func writeSegment(t *testing.T, path string, frames [][]byte) {
	t.Helper()
	data := []byte(segMagic)
	for _, f := range frames {
		data = append(data, f...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotTruncatesLog drives enough commits through a small
// SnapshotEvery to force rotations, then checks the snapshot exists,
// old segments are gone, and recovery is exact.
func TestSnapshotTruncatesLog(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SnapshotEvery = 8
	d := mustOpen(t, opts)
	const n = 60
	counterChain(t, d, 1, n)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.SnapshotError != "" {
		t.Fatalf("snapshot error: %s", st.SnapshotError)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
		t.Fatalf("no snapshot file: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			segs++
		}
	}
	if segs == 0 || segs > 3 {
		t.Errorf("expected a small number of surviving segments, found %d", segs)
	}

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	info := re.Recovery()
	if !info.Certified {
		t.Fatalf("recovery not certified: %s", info.Verdict)
	}
	if info.SnapshotObjects == 0 {
		t.Error("recovery loaded no snapshot")
	}
	if v, ok := re.Latest("x"); !ok || v.Val != n || v.TS != n {
		t.Errorf("Latest(x) = %+v, %v; want %d@%d", v, ok, n, n)
	}
	if re.RecoveredMaxTS() != n {
		t.Errorf("RecoveredMaxTS = %d, want %d", re.RecoveredMaxTS(), n)
	}
}

// TestCorruptSnapshotRefuses flips a byte inside the snapshot document
// and asserts Open refuses: the snapshot's segments may already be
// truncated, so serving without it could lose acknowledged commits.
func TestCorruptSnapshotRefuses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SnapshotEvery = 8
	d := mustOpen(t, opts)
	counterChain(t, d, 1, 40)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testOpts(dir)); err == nil {
		t.Fatal("Open served a CRC-failing snapshot")
	}
}

// TestStats pins the durability counters: with everything synced the
// appended and synced LSNs agree.
func TestStats(t *testing.T) {
	t.Parallel()
	d := mustOpen(t, testOpts(t.TempDir()))
	defer d.Close()
	counterChain(t, d, 1, 10)
	st := d.Stats()
	if st.AppendedLSN != 10 || st.SyncedLSN != 10 {
		t.Errorf("Stats = %+v, want appended=synced=10", st)
	}
	if st.LastSyncUnixNano == 0 {
		t.Error("LastSyncUnixNano never set")
	}
}

// TestEmptyDirCertifies pins the trivial case: a fresh directory opens
// certified with zero commits.
func TestEmptyDirCertifies(t *testing.T) {
	t.Parallel()
	d := mustOpen(t, testOpts(t.TempDir()))
	defer d.Close()
	info := d.Recovery()
	if !info.Certified || info.Commits != 0 {
		t.Errorf("fresh-dir recovery = %+v", info)
	}
}
