package mem_test

import (
	"testing"

	"sian/internal/storage"
	"sian/internal/storage/drivertest"
)

// TestDriverConformance runs the shared storage-driver suite against
// the in-memory driver.
func TestDriverConformance(t *testing.T) {
	t.Parallel()
	drivertest.Run(t, func(t *testing.T) storage.Driver { return storage.NewMem() })
}
