package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sian/internal/model"
)

// The micro-benchmarks measure the store primitives under 1, 4 and 8
// goroutines on disjoint objects — the contention profile the sharded
// SI commit path produces. Each goroutine owns a private object so
// installs stay per-chain monotonic; with lock striping the
// goroutines fall onto distinct shards with high probability and
// should scale, where the seed single-lock store serialised them.

func benchObjs(n int) []model.Obj {
	objs := make([]model.Obj, n)
	for i := range objs {
		objs[i] = model.Obj(fmt.Sprintf("bench%d", i))
	}
	return objs
}

func runGoroutines(b *testing.B, workers int, fn func(worker, iters int)) {
	b.Helper()
	per := b.N/workers + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w, per)
		}(w)
	}
	wg.Wait()
}

func BenchmarkInstall(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines-%d", workers), func(b *testing.B) {
			s := New()
			objs := benchObjs(workers)
			runGoroutines(b, workers, func(w, iters int) {
				obj := objs[w]
				for i := 1; i <= iters; i++ {
					if err := s.Install(obj, Version{Val: model.Value(i), TS: uint64(i)}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkInstallBatch(b *testing.B) {
	// One batch per op, 8 objects each: the PSI replica apply-loop
	// shape. Compare with BenchmarkInstall at the same object count to
	// see the per-object-lock saving.
	const batchSize = 8
	s := New()
	objs := benchObjs(batchSize)
	ws := make([]Write, batchSize)
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		for j := range ws {
			ws[j] = Write{Obj: objs[j], Version: Version{Val: model.Value(i), TS: uint64(i)}}
		}
		if err := s.InstallBatch(ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadAt(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines-%d", workers), func(b *testing.B) {
			s := New()
			objs := benchObjs(workers)
			const versions = 128
			for _, obj := range objs {
				for i := 1; i <= versions; i++ {
					if err := s.Install(obj, Version{Val: model.Value(i), TS: uint64(i)}); err != nil {
						b.Fatal(err)
					}
				}
			}
			runGoroutines(b, workers, func(w, iters int) {
				obj := objs[w]
				for i := 0; i < iters; i++ {
					if _, ok := s.ReadAt(obj, uint64(1+i%versions)); !ok {
						b.Error("read missed")
						return
					}
				}
			})
		})
	}
}

func BenchmarkGC(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines-%d", workers), func(b *testing.B) {
			// GC while concurrent writers keep growing disjoint chains:
			// the Compact-under-load profile. Writers run outside the
			// measured goroutine count; the benchmark times GC sweeps.
			s := New()
			objs := benchObjs(workers)
			var seqs = make([]atomic.Uint64, workers)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						ts := seqs[w].Add(1)
						if err := s.Install(objs[w], Version{Val: model.Value(ts), TS: ts}); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				min := seqs[0].Load()
				for w := 1; w < workers; w++ {
					if v := seqs[w].Load(); v < min {
						min = v
					}
				}
				s.GC(min)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}
