// Package mem is the in-memory storage driver: the multi-version
// key-value substrate used by the transactional engines in
// internal/engine, reached through the internal/storage driver
// interface (storage.NewMem) or embedded directly by drivers that add
// durability on top (internal/storage/wal).
//
// A Store keeps, per object, a chain of versions ordered by a caller-
// supplied logical timestamp. Snapshot reads (ReadAt) return the
// latest version at or below a timestamp — exactly the primitive the
// SI concurrency-control algorithm of §1 of the paper needs ("a
// transaction reads values of shared objects from a snapshot taken at
// its start"), and the one each parallel-SI replica needs for its
// local snapshots. Garbage collection truncates chains below a
// caller-chosen watermark.
//
// The store is lock-striped: objects hash onto a fixed number of
// shards, each with its own mutex, chain map and garbage collection,
// so reads and installs on disjoint objects never contend. Commit
// protocols that must validate and install a whole write set
// atomically take the write set's shard locks once, in canonical
// shard order, through LockObjs; the batch operations (InstallBatch,
// ReadAtBatch, LatestTSBatch) likewise visit each shard lock once
// per call instead of once per object.
//
// The store is safe for concurrent use; the zero value is ready.
package mem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"sian/internal/model"
)

// Version is one committed version of an object.
type Version struct {
	// Val is the value written.
	Val model.Value
	// TS is the logical commit timestamp; chains are strictly
	// increasing in TS.
	TS uint64
	// Writer optionally identifies the committing transaction for
	// diagnostics and conflict attribution.
	Writer string
	// Meta carries engine-specific metadata (e.g. the global
	// write-sequence stamp the PSI engine uses for conflict checks).
	Meta uint64
}

// Write pairs an object with the version to install, for the batch
// operations.
type Write struct {
	Obj     model.Obj
	Version Version
}

// numShards is the lock-stripe count. A power of two so the shard
// index is a mask; 64 keeps the whole stripe set addressable as one
// uint64 bitmask in LockObjs.
const numShards = 64

// shard is one lock stripe: a mutex and the chains of every object
// hashing onto it.
type shard struct {
	mu     sync.RWMutex
	chains map[model.Obj][]Version
}

// Store is a sharded multi-version key-value store. The zero value is
// ready to use.
type Store struct {
	shards [numShards]shard
}

// New returns an empty store. Equivalent to new(Store); provided for
// symmetry with the rest of the module.
func New() *Store { return &Store{} }

// shardIndex hashes x onto a stripe (FNV-1a).
func shardIndex(x model.Obj) uint32 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(x); i++ {
		h ^= uint64(x[i])
		h *= 1099511628211
	}
	return uint32(h) & (numShards - 1)
}

func (s *Store) shardOf(x model.Obj) *shard { return &s.shards[shardIndex(x)] }

// installLocked appends a version to the object's chain. Callers hold
// sh.mu.
func (sh *shard) installLocked(x model.Obj, v Version) error {
	if sh.chains == nil {
		sh.chains = make(map[model.Obj][]Version)
	}
	chain := sh.chains[x]
	if len(chain) > 0 && chain[len(chain)-1].TS >= v.TS {
		return fmt.Errorf("mem: non-monotonic install on %q: ts %d ≤ latest %d",
			x, v.TS, chain[len(chain)-1].TS)
	}
	sh.chains[x] = append(chain, v)
	return nil
}

// readAtLocked returns the latest version of x with TS ≤ ts, if any.
// Callers hold sh.mu (read or write).
func (sh *shard) readAtLocked(x model.Obj, ts uint64) (Version, bool) {
	chain := sh.chains[x]
	// Chains are sorted by TS; binary-search the first version > ts.
	i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > ts })
	if i == 0 {
		return Version{}, false
	}
	return chain[i-1], true
}

// latestTSLocked returns the newest timestamp of x, or zero. Callers
// hold sh.mu.
func (sh *shard) latestTSLocked(x model.Obj) uint64 {
	chain := sh.chains[x]
	if len(chain) == 0 {
		return 0
	}
	return chain[len(chain)-1].TS
}

// Install appends a version to the object's chain. The version's
// timestamp must strictly exceed the current latest; otherwise an
// error is returned and the store is unchanged.
func (s *Store) Install(x model.Obj, v Version) error {
	sh := s.shardOf(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.installLocked(x, v)
}

// InstallBatch installs every write, taking each covered shard lock
// exactly once. Writes to the same shard are installed in slice
// order. On a non-monotonic write the batch stops and the error is
// returned; earlier writes of the batch stay installed (commit
// protocols order batches so this cannot happen mid-commit).
func (s *Store) InstallBatch(ws []Write) error {
	if len(ws) == 0 {
		return nil
	}
	l := s.lockMask(writeMask(ws))
	defer l.Unlock()
	for _, w := range ws {
		if err := s.shardOf(w.Obj).installLocked(w.Obj, w.Version); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt returns the latest version of x with TS ≤ ts, if any.
func (s *Store) ReadAt(x model.Obj, ts uint64) (Version, bool) {
	sh := s.shardOf(x)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.readAtLocked(x, ts)
}

// ReadAtBatch performs ReadAt for every object at one timestamp,
// taking each covered shard read-lock exactly once. The i-th result
// corresponds to objs[i]; oks[i] reports whether a version existed.
// The reads are not a cross-shard atomic snapshot — like a sequence
// of ReadAt calls, each shard is consistent internally and the
// timestamp bound provides the snapshot semantics the engines need.
func (s *Store) ReadAtBatch(objs []model.Obj, ts uint64) ([]Version, []bool) {
	out := make([]Version, len(objs))
	oks := make([]bool, len(objs))
	if len(objs) == 0 {
		return out, oks
	}
	var mask uint64
	for _, x := range objs {
		mask |= 1 << shardIndex(x)
	}
	for mi := mask; mi != 0; mi &= mi - 1 {
		sh := &s.shards[bits.TrailingZeros64(mi)]
		sh.mu.RLock()
	}
	for i, x := range objs {
		out[i], oks[i] = s.shardOf(x).readAtLocked(x, ts)
	}
	for mi := mask; mi != 0; mi &= mi - 1 {
		sh := &s.shards[bits.TrailingZeros64(mi)]
		sh.mu.RUnlock()
	}
	return out, oks
}

// Latest returns the most recent version of x, if any.
func (s *Store) Latest(x model.Obj) (Version, bool) {
	sh := s.shardOf(x)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[x]
	if len(chain) == 0 {
		return Version{}, false
	}
	return chain[len(chain)-1], true
}

// LatestTS returns the timestamp of the most recent version of x, or
// zero when x has never been written.
func (s *Store) LatestTS(x model.Obj) uint64 {
	sh := s.shardOf(x)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.latestTSLocked(x)
}

// LatestTSBatch returns LatestTS for every object, taking each
// covered shard read-lock exactly once.
func (s *Store) LatestTSBatch(objs []model.Obj) []uint64 {
	out := make([]uint64, len(objs))
	if len(objs) == 0 {
		return out
	}
	var mask uint64
	for _, x := range objs {
		mask |= 1 << shardIndex(x)
	}
	for mi := mask; mi != 0; mi &= mi - 1 {
		s.shards[bits.TrailingZeros64(mi)].mu.RLock()
	}
	for i, x := range objs {
		out[i] = s.shardOf(x).latestTSLocked(x)
	}
	for mi := mask; mi != 0; mi &= mi - 1 {
		s.shards[bits.TrailingZeros64(mi)].mu.RUnlock()
	}
	return out
}

// Objects returns the sorted list of objects with at least one
// version.
func (s *Store) Objects() []model.Obj {
	var out []model.Obj
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for x := range sh.chains {
			out = append(out, x)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VersionCount returns the number of stored versions of x.
func (s *Store) VersionCount(x model.Obj) int {
	sh := s.shardOf(x)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.chains[x])
}

// Chain returns a copy of x's full version chain, oldest first (empty
// when x has never been written). Diagnostic accessor used by
// durability tests to assert that an acknowledged write survived.
func (s *Store) Chain(x model.Obj) []Version {
	sh := s.shardOf(x)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]Version(nil), sh.chains[x]...)
}

// SnapshotLatest returns the latest version of every object plus the
// maximum timestamp present, captured atomically across all shards:
// every shard lock is held at once, so no commit window (LockObjs) can
// be mid-install while the cut is taken. Commits are therefore
// all-or-nothing in the snapshot — the property the WAL driver's
// conditional replay relies on. The stop-the-world window lasts one
// map walk; callers (log compaction) are rare.
func (s *Store) SnapshotLatest() (map[model.Obj]Version, uint64) {
	l := s.lockMask(^uint64(0))
	defer l.Unlock()
	out := make(map[model.Obj]Version)
	var maxTS uint64
	for i := range s.shards {
		for x, chain := range s.shards[i].chains {
			if len(chain) == 0 {
				continue
			}
			v := chain[len(chain)-1]
			out[x] = v
			if v.TS > maxTS {
				maxTS = v.TS
			}
		}
	}
	return out, maxTS
}

// Clone returns a deep copy of the store (used for replica state
// transfer). The copy is shard-by-shard: each shard is internally
// consistent, and callers quiesce writers (the PSI state transfer
// holds the donor replica's mutex) when they need a point-in-time
// snapshot.
func (s *Store) Clone() *Store {
	out := &Store{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if len(sh.chains) > 0 {
			dst := make(map[model.Obj][]Version, len(sh.chains))
			for x, chain := range sh.chains {
				cp := make([]Version, len(chain))
				copy(cp, chain)
				dst[x] = cp
			}
			out.shards[i].chains = dst
		}
		sh.mu.RUnlock()
	}
	return out
}

// GC drops all versions of every object that are older than the
// latest version with TS ≤ watermark (which is kept, since snapshot
// reads at or above the watermark may still need it). It returns the
// number of versions discarded. Shards are collected one at a time,
// so GC never blocks readers or writers of more than one stripe.
func (s *Store) GC(watermark uint64) int {
	dropped := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for x, chain := range sh.chains {
			j := sort.Search(len(chain), func(j int) bool { return chain[j].TS > watermark })
			// chain[j-1] is the version a read at the watermark returns;
			// everything before it is unreachable for ts ≥ watermark.
			if j > 1 {
				keep := make([]Version, len(chain)-(j-1))
				copy(keep, chain[j-1:])
				sh.chains[x] = keep
				dropped += j - 1
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Locked is exclusive ownership of every shard covering a write set,
// acquired by LockObjs. It lets a commit protocol validate
// (LatestTS), then install, a whole write set under one atomic
// multi-shard critical section — the first-committer-wins window.
type Locked struct {
	s    *Store
	mask uint64 // bit i set ⇒ s.shards[i] is write-locked
}

// LockObjs write-locks every shard covering objs, in ascending shard
// order (the canonical order, so concurrent commits with overlapping
// write sets never deadlock), and returns the multi-shard lock.
// Callers must Unlock it exactly once.
func (s *Store) LockObjs(objs []model.Obj) *Locked {
	var mask uint64
	for _, x := range objs {
		mask |= 1 << shardIndex(x)
	}
	return s.lockMask(mask)
}

func (s *Store) lockMask(mask uint64) *Locked {
	for mi := mask; mi != 0; mi &= mi - 1 {
		s.shards[bits.TrailingZeros64(mi)].mu.Lock()
	}
	return &Locked{s: s, mask: mask}
}

func writeMask(ws []Write) uint64 {
	var mask uint64
	for _, w := range ws {
		mask |= 1 << shardIndex(w.Obj)
	}
	return mask
}

// covers reports whether x's shard is held by the lock.
func (l *Locked) covers(x model.Obj) bool {
	return l.mask&(1<<shardIndex(x)) != 0
}

// LatestTS returns the newest timestamp of x. x must be covered by
// the locked write set.
func (l *Locked) LatestTS(x model.Obj) uint64 {
	if !l.covers(x) {
		panic(fmt.Sprintf("mem: LatestTS(%q) outside the locked write set", x))
	}
	return l.s.shardOf(x).latestTSLocked(x)
}

// ReadAt returns the latest version of x with TS ≤ ts. x must be
// covered by the locked write set.
func (l *Locked) ReadAt(x model.Obj, ts uint64) (Version, bool) {
	if !l.covers(x) {
		panic(fmt.Sprintf("mem: ReadAt(%q) outside the locked write set", x))
	}
	return l.s.shardOf(x).readAtLocked(x, ts)
}

// Install appends a version to x's chain under the held lock. x must
// be covered by the locked write set.
func (l *Locked) Install(x model.Obj, v Version) error {
	if !l.covers(x) {
		panic(fmt.Sprintf("mem: Install(%q) outside the locked write set", x))
	}
	return l.s.shardOf(x).installLocked(x, v)
}

// Unlock releases every held shard. The Locked must not be used
// afterwards.
func (l *Locked) Unlock() {
	for mi := l.mask; mi != 0; mi &= mi - 1 {
		l.s.shards[bits.TrailingZeros64(mi)].mu.Unlock()
	}
	l.mask = 0
}
