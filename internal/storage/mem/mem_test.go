package mem

import (
	"fmt"
	"sync"
	"testing"

	"sian/internal/model"
)

func TestInstallAndReadAt(t *testing.T) {
	t.Parallel()
	s := New()
	for i, v := range []model.Value{10, 20, 30} {
		if err := s.Install("x", Version{Val: v, TS: uint64(i + 1)}); err != nil {
			t.Fatalf("Install: %v", err)
		}
	}
	tests := []struct {
		ts   uint64
		want model.Value
		ok   bool
	}{
		{0, 0, false},
		{1, 10, true},
		{2, 20, true},
		{3, 30, true},
		{99, 30, true},
	}
	for _, tc := range tests {
		got, ok := s.ReadAt("x", tc.ts)
		if ok != tc.ok || (ok && got.Val != tc.want) {
			t.Errorf("ReadAt(x, %d) = (%v, %v), want (%d, %v)", tc.ts, got.Val, ok, tc.want, tc.ok)
		}
	}
	if _, ok := s.ReadAt("missing", 5); ok {
		t.Error("ReadAt on missing object succeeded")
	}
}

func TestInstallMonotonic(t *testing.T) {
	t.Parallel()
	s := New()
	if err := s.Install("x", Version{Val: 1, TS: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Install("x", Version{Val: 2, TS: 5}); err == nil {
		t.Error("equal timestamp accepted")
	}
	if err := s.Install("x", Version{Val: 2, TS: 4}); err == nil {
		t.Error("smaller timestamp accepted")
	}
	// Other objects are independent.
	if err := s.Install("y", Version{Val: 9, TS: 1}); err != nil {
		t.Errorf("independent object rejected: %v", err)
	}
}

func TestLatest(t *testing.T) {
	t.Parallel()
	s := New()
	if _, ok := s.Latest("x"); ok {
		t.Error("Latest on empty store")
	}
	if ts := s.LatestTS("x"); ts != 0 {
		t.Errorf("LatestTS = %d, want 0", ts)
	}
	mustInstall(t, s, "x", Version{Val: 1, TS: 3, Writer: "w1"})
	mustInstall(t, s, "x", Version{Val: 2, TS: 7, Writer: "w2"})
	v, ok := s.Latest("x")
	if !ok || v.Val != 2 || v.TS != 7 || v.Writer != "w2" {
		t.Errorf("Latest = %+v", v)
	}
	if s.LatestTS("x") != 7 {
		t.Error("LatestTS wrong")
	}
}

func mustInstall(t *testing.T, s *Store, x model.Obj, v Version) {
	t.Helper()
	if err := s.Install(x, v); err != nil {
		t.Fatalf("Install(%s, %+v): %v", x, v, err)
	}
}

func TestObjectsAndVersionCount(t *testing.T) {
	t.Parallel()
	s := New()
	mustInstall(t, s, "b", Version{Val: 1, TS: 1})
	mustInstall(t, s, "a", Version{Val: 1, TS: 1})
	mustInstall(t, s, "a", Version{Val: 2, TS: 2})
	objs := s.Objects()
	if len(objs) != 2 || objs[0] != "a" || objs[1] != "b" {
		t.Errorf("Objects = %v", objs)
	}
	if s.VersionCount("a") != 2 || s.VersionCount("b") != 1 || s.VersionCount("zz") != 0 {
		t.Error("VersionCount wrong")
	}
}

func TestGC(t *testing.T) {
	t.Parallel()
	s := New()
	for i := 1; i <= 5; i++ {
		mustInstall(t, s, "x", Version{Val: model.Value(i), TS: uint64(i)})
	}
	dropped := s.GC(3)
	if dropped != 2 {
		t.Errorf("GC dropped %d, want 2", dropped)
	}
	// A read at the watermark still sees version 3.
	v, ok := s.ReadAt("x", 3)
	if !ok || v.Val != 3 {
		t.Errorf("ReadAt(3) after GC = (%v, %v)", v.Val, ok)
	}
	// Reads below the watermark now miss.
	if _, ok := s.ReadAt("x", 2); ok {
		t.Error("pre-watermark version survived GC")
	}
	if s.VersionCount("x") != 3 {
		t.Errorf("VersionCount = %d", s.VersionCount("x"))
	}
	// GC at or below the oldest kept version is a no-op.
	if d := s.GC(1); d != 0 {
		t.Errorf("second GC dropped %d", d)
	}
}

func TestZeroValueUsable(t *testing.T) {
	t.Parallel()
	var s Store
	if err := s.Install("x", Version{Val: 1, TS: 1}); err != nil {
		t.Fatalf("zero-value store unusable: %v", err)
	}
	if v, ok := s.ReadAt("x", 1); !ok || v.Val != 1 {
		t.Error("read after install on zero value failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	t.Parallel()
	s := New()
	const writers = 8
	const versions = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := model.Obj(fmt.Sprintf("k%d", w))
			for i := 1; i <= versions; i++ {
				if err := s.Install(obj, Version{Val: model.Value(i), TS: uint64(i)}); err != nil {
					t.Errorf("Install: %v", err)
					return
				}
				if v, ok := s.ReadAt(obj, uint64(i)); !ok || v.Val != model.Value(i) {
					t.Errorf("ReadAt(%s,%d) = (%v,%v)", obj, i, v.Val, ok)
					return
				}
			}
		}(w)
	}
	// Concurrent readers of all objects.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Objects()
				s.ReadAt("k0", uint64(i))
				s.LatestTS("k1")
			}
		}()
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		obj := model.Obj(fmt.Sprintf("k%d", w))
		if s.VersionCount(obj) != versions {
			t.Errorf("%s has %d versions", obj, s.VersionCount(obj))
		}
	}
}
