// Package storage defines the driver interface between the
// transactional engines (internal/engine) and the multi-version
// stores that back them. The engines program against Driver only; the
// concrete stores live in sub-packages:
//
//   - storage/mem — the 64-shard in-memory store (the former
//     internal/kvstore), reached via NewMem;
//   - storage/wal — a write-ahead-logged durable driver wrapping mem,
//     whose recovery replays the log through internal/monitor and
//     certifies the recovered state is SI before serving.
//
// The interface is exactly the engine-facing surface the SI protocol
// needs: snapshot reads (ReadAt), latest-timestamp validation
// (LatestTS), version installation (Install/InstallBatch), the
// multi-shard first-committer-wins commit window (LockObjs), and
// watermark compaction (Compact). Version and Write are aliases of the
// mem types so a driver wrapping mem shares them without conversion.
//
// Durability is layered on through optional interfaces discovered by
// type assertion, so the in-memory driver pays nothing for them:
// CommitLogger lets the engine hand a commit window the durable form
// of the transaction (ops included, so recovery certification is
// non-vacuous), DurableWindow exposes the fsynced log sequence number
// after the window closes, and Recovered seeds the engine's timestamp
// allocator after a restart.
package storage

import (
	"sian/internal/model"
	"sian/internal/obs/txtrace"
	"sian/internal/storage/mem"
)

// Version is one committed version of an object (alias of the mem
// driver's version type, shared by every driver).
type Version = mem.Version

// Write pairs an object with the version to install, for the batch
// operations.
type Write = mem.Write

// Locked is exclusive ownership of every lock stripe covering a write
// set, acquired by Driver.LockObjs: the atomic validate-then-install
// window of a first-committer-wins commit. Implementations panic when
// an accessor names an object outside the locked set.
type Locked interface {
	// LatestTS returns the newest timestamp of x.
	LatestTS(x model.Obj) uint64
	// ReadAt returns the latest version of x with TS ≤ ts, if any.
	ReadAt(x model.Obj, ts uint64) (Version, bool)
	// Install appends a version to x's chain under the held lock.
	Install(x model.Obj, v Version) error
	// Unlock releases the window. For durable drivers this is also the
	// durability point: Unlock appends the window's log record inside
	// the critical section (so per-object log order matches timestamp
	// order) and returns only after the record is fsynced (group fsync
	// permitted). The Locked must not be used afterwards.
	Unlock()
}

// BatchLocked is the group-commit window acquired by Driver.LockBatch:
// exclusive ownership of every lock stripe covering the union write
// set of a batch of pairwise-disjoint commits. It extends Locked with
// LogCommitBatch, which stages the whole batch's commit records —
// ascending timestamp order — so a durable driver appends them as one
// contiguous record group inside Unlock and covers the group with a
// single fsync. Drivers without a log ignore the staging.
type BatchLocked interface {
	Locked
	// LogCommitBatch stages the batch's commit records, in ascending
	// timestamp order, for the durability point at Unlock. Call at
	// most once, after installing every member's writes.
	LogCommitBatch(recs []CommitRecord)
}

// Driver is the engine-facing storage surface. All methods are safe
// for concurrent use.
type Driver interface {
	// Install appends a version to the object's chain. The version's
	// timestamp must strictly exceed the current latest.
	Install(x model.Obj, v Version) error
	// InstallBatch installs every write, taking each covered lock
	// stripe exactly once.
	InstallBatch(ws []Write) error
	// ReadAt returns the latest version of x with TS ≤ ts, if any.
	ReadAt(x model.Obj, ts uint64) (Version, bool)
	// ReadAtBatch performs ReadAt for every object at one timestamp,
	// taking each covered stripe read-lock exactly once.
	ReadAtBatch(objs []model.Obj, ts uint64) ([]Version, []bool)
	// Latest returns the most recent version of x, if any.
	Latest(x model.Obj) (Version, bool)
	// LatestTS returns the newest timestamp of x, or zero.
	LatestTS(x model.Obj) uint64
	// LatestTSBatch returns LatestTS for every object, taking each
	// covered stripe read-lock exactly once.
	LatestTSBatch(objs []model.Obj) []uint64
	// LockObjs write-locks every stripe covering objs in canonical
	// order and returns the commit window.
	LockObjs(objs []model.Obj) Locked
	// LockBatch write-locks every stripe covering the union write set
	// of a batch of pairwise-disjoint commits — one multi-shard
	// critical section in the same canonical stripe order as LockObjs —
	// and returns the group-commit window. For a durable driver the
	// records staged via LogCommitBatch are appended contiguously
	// inside Unlock and fsynced as one group.
	LockBatch(objs []model.Obj) BatchLocked
	// Compact drops versions unreachable from snapshots at or above
	// the watermark and returns the number discarded.
	Compact(watermark uint64) int
	// Objects returns the sorted list of objects with ≥ 1 version.
	Objects() []model.Obj
	// VersionCount returns the number of stored versions of x.
	VersionCount(x model.Obj) int
	// Close releases driver resources (files, goroutines). For durable
	// drivers it flushes and syncs the log; the in-memory driver's is a
	// no-op. The driver must not be used afterwards.
	Close() error
}

// Cloner is implemented by drivers that support deep copies (replica
// state transfer in the PSI engine).
type Cloner interface {
	Clone() Driver
}

// CommitRecord is the durable form of one engine commit, handed to a
// commit window via CommitLogger before Unlock. Ops carries the full
// operation list — reads included — so that replaying the log through
// the online monitor re-certifies the history rather than a write-only
// skeleton (write-only histories satisfy SI trivially).
type CommitRecord struct {
	// TS is the commit timestamp the window installed under.
	TS uint64
	// Session and TxID attribute the commit for recovery replay
	// (session order is what the monitor's SO edges need).
	Session string
	TxID    string
	// Ops is the transaction's operation list in program order.
	Ops []model.Op
}

// CommitLogger is implemented by the commit windows of durable
// drivers. The engine calls LogCommit after installing the write set
// and before Unlock; the window stages the record and appends it
// inside Unlock's critical section. Windows that never receive a
// LogCommit log their raw installs instead (engine-external writes).
type CommitLogger interface {
	LogCommit(rec CommitRecord)
}

// DurableWindow is implemented by the commit windows of durable
// drivers. After Unlock has returned, Durable reports the log sequence
// number the window's record was fsynced at, and the sync error if
// durability failed (the installs are then visible in memory but not
// on disk; the engine surfaces the error after publishing so the
// in-order timestamp pipeline cannot stall).
type DurableWindow interface {
	Durable() (lsn uint64, err error)
}

// TraceAttacher is implemented by the commit windows of drivers that
// can attribute their internal stages (WAL append, group-fsync wait)
// to a per-transaction trace. The engine attaches the transaction's
// trace before Unlock — only when tracing is on — and the window marks
// its stages on it inside Unlock. The in-memory driver does not
// implement it, so the untraced and in-memory paths pay nothing.
type TraceAttacher interface {
	AttachTrace(tr *txtrace.Trace)
}

// Recovered is implemented by drivers that restore state from a log.
// RecoveredMaxTS returns the highest commit timestamp present after
// recovery, so the engine seeds its allocator above it.
type Recovered interface {
	RecoveredMaxTS() uint64
}

// memDriver adapts *mem.Store to Driver. The only non-forwarding
// method is LockObjs (Go interfaces need the Locked return type to
// match exactly) and Compact (mem names it GC).
type memDriver struct {
	s *mem.Store
}

// NewMem returns a fresh in-memory driver: the 64-shard lock-striped
// MVCC store of storage/mem behind the Driver interface.
func NewMem() Driver { return &memDriver{s: mem.New()} }

func (d *memDriver) Install(x model.Obj, v Version) error { return d.s.Install(x, v) }
func (d *memDriver) InstallBatch(ws []Write) error        { return d.s.InstallBatch(ws) }
func (d *memDriver) ReadAt(x model.Obj, ts uint64) (Version, bool) {
	return d.s.ReadAt(x, ts)
}
func (d *memDriver) ReadAtBatch(objs []model.Obj, ts uint64) ([]Version, []bool) {
	return d.s.ReadAtBatch(objs, ts)
}
func (d *memDriver) Latest(x model.Obj) (Version, bool)      { return d.s.Latest(x) }
func (d *memDriver) LatestTS(x model.Obj) uint64             { return d.s.LatestTS(x) }
func (d *memDriver) LatestTSBatch(objs []model.Obj) []uint64 { return d.s.LatestTSBatch(objs) }
func (d *memDriver) LockObjs(objs []model.Obj) Locked        { return d.s.LockObjs(objs) }
func (d *memDriver) LockBatch(objs []model.Obj) BatchLocked {
	return memBatchWindow{d.s.LockObjs(objs)}
}
func (d *memDriver) Compact(watermark uint64) int { return d.s.GC(watermark) }
func (d *memDriver) Objects() []model.Obj         { return d.s.Objects() }
func (d *memDriver) VersionCount(x model.Obj) int { return d.s.VersionCount(x) }
func (d *memDriver) Close() error                 { return nil }
func (d *memDriver) Clone() Driver                { return &memDriver{s: d.s.Clone()} }

// memBatchWindow adapts mem's multi-shard window to the group-commit
// interface; with no log to stage into, LogCommitBatch is a no-op.
type memBatchWindow struct{ *mem.Locked }

func (memBatchWindow) LogCommitBatch([]CommitRecord) {}

// Mem returns the underlying concrete store of a NewMem driver, for
// callers layering on top of it (tests, durability drivers). It
// returns nil for drivers not created by NewMem.
func Mem(d Driver) *mem.Store {
	if md, ok := d.(*memDriver); ok {
		return md.s
	}
	return nil
}
