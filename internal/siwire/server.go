package siwire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"sian/internal/engine"
	"sian/internal/model"
)

// ServerConfig parameterises a Server.
type ServerConfig struct {
	// DB is the engine the server fronts. The server does not own it:
	// the caller closes it after Close returns.
	DB *engine.DB
	// Info, when set, supplies the identity document served to info
	// requests; the zero Info is served otherwise.
	Info func() Info
}

// Server speaks the siwire binary protocol over a listener: one
// accepted connection = one engine session = at most one open
// transaction. Create with NewServer, run with Serve, stop with Close.
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg     sync.WaitGroup
	nextID atomic.Uint64

	// httpSessions pools engine sessions for the HTTP fallback, which
	// has no connection to pin a session to.
	httpMu       sync.Mutex
	httpSessions []*engine.Session
}

// NewServer returns an unstarted server.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("siwire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes every live connection (open
// transactions abort), and waits for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// handleConn runs one connection's request loop. Any transport or
// protocol failure aborts the connection's open transaction — the
// client never saw a commit ok, so nothing acknowledged is lost.
func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := bufio.NewReaderSize(conn, 1<<14)
	bw := bufio.NewWriterSize(conn, 1<<14)

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != Magic {
		return
	}

	sess := s.cfg.DB.Session(fmt.Sprintf("wire/%d", s.nextID.Add(1)))
	var tx *engine.ManualTx
	defer func() {
		if tx != nil {
			tx.Abort()
		}
	}()

	respond := func(status byte, body []byte) error {
		payload := make([]byte, 0, 1+len(body))
		payload = append(payload, status)
		payload = append(payload, body...)
		return writeFrame(bw, payload)
	}
	fail := func(msg string) error {
		if tx != nil {
			tx.Abort()
			tx = nil
		}
		return respond(statusErr, appendStr(nil, msg))
	}

	for n := uint64(0); ; n++ {
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		r := &reader{b: payload}
		op := r.u8("op")
		var werr error
		switch op {
		case opBegin:
			if tx != nil {
				werr = fail("begin: transaction already open")
				break
			}
			// Version-tolerant trace extension: a tracing client appends
			// its u64 trace ID; old clients send no body.
			var traceID uint64
			if r.remaining() >= 8 {
				traceID = r.u64("trace id")
			}
			tx, err = sess.BeginTraced(fmt.Sprintf("w%d", n), traceID)
			if err != nil {
				tx = nil
				werr = fail(err.Error())
				break
			}
			werr = respond(statusOK, nil)
		case opRead:
			x := model.Obj(r.str("read object"))
			if r.err != nil {
				werr = fail(r.err.Error())
				break
			}
			if tx == nil {
				werr = fail("read: no open transaction")
				break
			}
			v, err := tx.Read(x)
			switch {
			case errors.Is(err, engine.ErrUninitialized):
				// The snapshot simply has no version; the transaction
				// stays usable.
				werr = respond(statusUninitialized, nil)
			case err != nil:
				werr = fail(err.Error())
			default:
				werr = respond(statusOK, appendU64(nil, uint64(v)))
			}
		case opWrite:
			x := model.Obj(r.str("write object"))
			v := model.Value(r.u64("write value"))
			if r.err != nil {
				werr = fail(r.err.Error())
				break
			}
			if tx == nil {
				werr = fail("write: no open transaction")
				break
			}
			if err := tx.Write(x, v); err != nil {
				werr = fail(err.Error())
				break
			}
			werr = respond(statusOK, nil)
		case opCommit:
			if tx == nil {
				werr = fail("commit: no open transaction")
				break
			}
			err := tx.Commit()
			lsn := tx.LSN()
			td := tx.TraceData()
			tx = nil
			switch {
			case errors.Is(err, engine.ErrConflict):
				werr = respond(statusConflict, nil)
			case err != nil:
				werr = fail(err.Error())
			default:
				// Over a durable driver this line is reached only after
				// the commit record is fsynced: ok ⇒ durable. When the
				// server traces, the pipeline spans ride back after the
				// LSN (old clients ignore them).
				werr = respond(statusOK, appendTraceBlob(appendU64(nil, lsn), td))
			}
		case opAbort:
			if tx != nil {
				tx.Abort()
				tx = nil
			}
			werr = respond(statusOK, nil)
		case opInfo:
			var info Info
			if s.cfg.Info != nil {
				info = s.cfg.Info()
			}
			doc, err := json.Marshal(info)
			if err != nil {
				werr = fail(err.Error())
				break
			}
			werr = respond(statusOK, doc)
		default:
			werr = fail(fmt.Sprintf("unknown op %d", op))
		}
		if werr != nil {
			return
		}
	}
}

// --- HTTP/JSON fallback ---

// HTTPOp is one operation of an HTTP transaction request.
type HTTPOp struct {
	// Op is "read" or "write".
	Op  string      `json:"op"`
	Obj string      `json:"obj"`
	Val model.Value `json:"val,omitempty"`
}

// HTTPRequest is the POST /v1/transact body: one transaction's
// operations, executed atomically with server-side conflict retry
// (the HTTP fallback cannot hold a transaction open across requests,
// so unlike the binary protocol the retry loop lives server-side).
type HTTPRequest struct {
	Ops []HTTPOp `json:"ops"`
}

// HTTPResponse is the success body: per-op results (read values,
// null for writes), the commit's durability LSN and how many conflict
// retries it took.
type HTTPResponse struct {
	Results []*model.Value `json:"results"`
	LSN     uint64         `json:"lsn"`
	Retries int            `json:"retries"`
}

const httpMaxRetries = 1000

func (s *Server) getHTTPSession() *engine.Session {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if n := len(s.httpSessions); n > 0 {
		sess := s.httpSessions[n-1]
		s.httpSessions = s.httpSessions[:n-1]
		return sess
	}
	return s.cfg.DB.Session(fmt.Sprintf("http/%d", s.nextID.Add(1)))
}

func (s *Server) putHTTPSession(sess *engine.Session) {
	s.httpMu.Lock()
	s.httpSessions = append(s.httpSessions, sess)
	s.httpMu.Unlock()
}

// HTTPHandler returns the JSON fallback endpoints, for mounting on the
// observability plane's mux:
//
//	POST /v1/transact  run one transaction (HTTPRequest → HTTPResponse)
//	GET  /v1/info      the server's Info document
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/transact", s.handleTransact)
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		var info Info
		if s.cfg.Info != nil {
			info = s.cfg.Info()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(info)
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleTransact(w http.ResponseWriter, r *http.Request) {
	var req HTTPRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, MaxFrame))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, op := range req.Ops {
		if op.Op != "read" && op.Op != "write" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown op %q", op.Op))
			return
		}
		if op.Obj == "" {
			httpError(w, http.StatusBadRequest, "op without obj")
			return
		}
	}
	sess := s.getHTTPSession()
	defer s.putHTTPSession(sess)

	for attempt := 0; attempt < httpMaxRetries; attempt++ {
		tx, err := sess.Begin(fmt.Sprintf("http%d", attempt))
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		results := make([]*model.Value, len(req.Ops))
		opErr := func() error {
			for i, op := range req.Ops {
				if op.Op == "read" {
					v, err := tx.Read(model.Obj(op.Obj))
					if err != nil {
						return err
					}
					results[i] = &v
				} else if err := tx.Write(model.Obj(op.Obj), op.Val); err != nil {
					return err
				}
			}
			return nil
		}()
		if opErr != nil {
			tx.Abort()
			if errors.Is(opErr, engine.ErrUninitialized) {
				httpError(w, http.StatusUnprocessableEntity, opErr.Error())
			} else {
				httpError(w, http.StatusInternalServerError, opErr.Error())
			}
			return
		}
		err = tx.Commit()
		if errors.Is(err, engine.ErrConflict) {
			continue
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(HTTPResponse{Results: results, LSN: tx.LSN(), Retries: attempt})
		return
	}
	httpError(w, http.StatusConflict, "transaction kept conflicting")
}
