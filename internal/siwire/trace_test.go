package siwire

import (
	"math/rand"
	"net"
	"reflect"
	"testing"

	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/obs/txtrace"
	"sian/internal/storage/wal"
)

// startTracedServer runs an in-process server whose engine traces
// every transaction, returning the server tracer for inspection.
func startTracedServer(t *testing.T, tracer *txtrace.Tracer) string {
	t.Helper()
	drv, err := wal.Open(wal.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.New(engine.SI, engine.Config{Driver: drv, TxTracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{DB: db})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return ln.Addr().String()
}

// randSpans builds deterministic pseudo-random spans covering empty
// and populated attr maps, unknown stages and extreme timestamps.
func randSpans(rng *rand.Rand, n int) []txtrace.Span {
	stages := []txtrace.Stage{
		txtrace.StageBeginWait, txtrace.StageValidate, txtrace.StageFsyncWait,
		txtrace.StageWireCommit, "future_stage", "",
	}
	spans := make([]txtrace.Span, n)
	for i := range spans {
		sp := txtrace.Span{
			Stage: stages[rng.Intn(len(stages))],
			Start: rng.Int63(),
			End:   rng.Int63(),
		}
		for j := rng.Intn(3); j > 0; j-- {
			if sp.Attrs == nil {
				sp.Attrs = map[string]int64{}
			}
			sp.Attrs[string(rune('a'+j))] = rng.Int63() - rng.Int63()
		}
		spans[i] = sp
	}
	return spans
}

// TestTraceBlobRoundTrip is the codec property test: arbitrary span
// sets survive append → parse bit-exactly, including negative attr
// values (two's-complement through u64) and unknown stages.
func TestTraceBlobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		td := &txtrace.TraceData{Spans: randSpans(rng, rng.Intn(12))}
		// Encode under a pseudo-random ID via the tracer so td.ID() is set.
		id := rng.Uint64() | 1
		tr := txtrace.New(txtrace.Options{Start: id}).Begin("s")
		tr.AddSpans(td.Spans)
		tr.Finish(txtrace.OutcomeCommit, 0)
		data := tr.Data()

		b := appendTraceBlob(appendU64(nil, 12345), data)
		r := &reader{b: b}
		if lsn := r.u64("lsn"); lsn != 12345 {
			t.Fatalf("lsn = %d", lsn)
		}
		gotID, gotSpans := parseTraceBlob(r)
		if gotID != id {
			t.Fatalf("iter %d: id = %#x, want %#x", iter, gotID, id)
		}
		if len(gotSpans) != len(data.Spans) {
			t.Fatalf("iter %d: %d spans, want %d", iter, len(gotSpans), len(data.Spans))
		}
		for i := range gotSpans {
			if !reflect.DeepEqual(gotSpans[i], data.Spans[i]) {
				t.Fatalf("iter %d span %d: %+v != %+v", iter, i, gotSpans[i], data.Spans[i])
			}
		}
		if r.remaining() != 0 {
			t.Fatalf("iter %d: %d bytes left over", iter, r.remaining())
		}
	}
}

// TestTraceBlobNilAndTruncated pins the degenerate cases: a nil trace
// appends nothing (the untraced server's response is byte-identical to
// the pre-extension format), and truncated blobs fail cleanly instead
// of returning partial spans.
func TestTraceBlobNilAndTruncated(t *testing.T) {
	if got := appendTraceBlob(appendU64(nil, 9), nil); len(got) != 8 {
		t.Errorf("nil trace blob added %d bytes", len(got)-8)
	}

	tr := txtrace.New(txtrace.Options{Start: 0xee}).Begin("s")
	tr.Mark(txtrace.StageValidate)
	tr.Finish(txtrace.OutcomeCommit, 0)
	full := appendTraceBlob(nil, tr.Data())
	for cut := 1; cut < len(full); cut++ {
		r := &reader{b: full[:cut]}
		id, spans := parseTraceBlob(r)
		if r.err == nil {
			t.Fatalf("cut %d: truncated blob parsed without error", cut)
		}
		if id != 0 || spans != nil {
			t.Fatalf("cut %d: partial result (%#x, %d spans) despite error", cut, id, len(spans))
		}
	}
}

// TestTraceIDPropagation drives every frame type with tracing on at
// both ends: the client-chosen ID is adopted by the server, pipeline
// spans ride back on the commit response, and the server's tracer
// resolves the same ID.
func TestTraceIDPropagation(t *testing.T) {
	srvTracer := txtrace.New(txtrace.Options{})
	addr := startTracedServer(t, srvTracer)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const id = uint64(0xc0ffee00dd)
	if err := c.BeginTraced(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("x"); err != nil {
		t.Fatal(err)
	}
	res, err := c.CommitTraced()
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Error("no durability LSN")
	}
	if res.TraceID != id {
		t.Errorf("trace id = %#x, want %#x (server did not adopt the client's)", res.TraceID, id)
	}
	if len(res.ServerSpans) < 6 {
		t.Errorf("server returned %d pipeline spans, want ≥ 6: %+v", len(res.ServerSpans), res.ServerSpans)
	}
	stages := map[txtrace.Stage]bool{}
	for _, sp := range res.ServerSpans {
		stages[sp.Stage] = true
	}
	for _, want := range []txtrace.Stage{txtrace.StageValidate, txtrace.StageWALAppend, txtrace.StageFsyncWait, txtrace.StagePublish} {
		if !stages[want] {
			t.Errorf("missing %s span in %v", want, stages)
		}
	}
	if td := srvTracer.Get(id); td == nil {
		t.Error("server tracer cannot resolve the propagated ID")
	} else if td.Outcome != txtrace.OutcomeCommit {
		t.Errorf("server trace outcome = %s", td.Outcome)
	}

	// Abort and info frames under the same traced connection.
	if err := c.BeginTraced(id + 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if td := srvTracer.Get(id + 1); td == nil || td.Outcome != txtrace.OutcomeAbort {
		t.Errorf("aborted trace: %+v", td)
	}
	if _, err := c.Info(); err != nil {
		t.Fatal(err)
	}
}

// TestOldClientAgainstTracingServer is the backward-compatibility half:
// a pre-extension client (plain Begin, plain Commit) works unchanged
// against a tracing server, silently ignoring the trace blob.
func TestOldClientAgainstTracingServer(t *testing.T) {
	addr := startTracedServer(t, txtrace.New(txtrace.Options{}))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("y", 7); err != nil {
		t.Fatal(err)
	}
	lsn, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Error("old-format commit lost the LSN")
	}
	if v, err := readBack(c, "y"); err != nil || v != 7 {
		t.Errorf("read back: %d, %v", v, err)
	}
}

// TestTracedClientAgainstUntracedServer is the forward-compatibility
// half: a tracing client against a server that does not trace sees a
// zero trace ID and no spans, nothing else changes.
func TestTracedClientAgainstUntracedServer(t *testing.T) {
	addr := startTracedServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.BeginTraced(0x1234); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("z", 3); err != nil {
		t.Fatal(err)
	}
	res, err := c.CommitTraced()
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Error("no LSN")
	}
	if res.TraceID != 0 || res.ServerSpans != nil {
		t.Errorf("untraced server produced trace data: %+v", res)
	}
}

// readBack reads one object in a fresh transaction.
func readBack(c *Client, obj model.Obj) (model.Value, error) {
	if err := c.Begin(); err != nil {
		return 0, err
	}
	v, err := c.Read(obj)
	if err != nil {
		return 0, err
	}
	return v, c.Abort()
}
