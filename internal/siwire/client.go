package siwire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"sian/internal/model"
	"sian/internal/obs/txtrace"
)

// Client is a binary-protocol connection to a siwire server: one
// session, at most one open transaction. Not safe for concurrent use;
// open one Client per worker goroutine.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a siwire server and performs the magic handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("siwire: %w", err)
	}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 1<<14), bw: bufio.NewWriterSize(conn, 1<<14)}
	if _, err := c.bw.WriteString(Magic); err != nil {
		conn.Close()
		return nil, fmt.Errorf("siwire: %w", err)
	}
	return c, nil
}

// Close closes the connection; an open transaction aborts server-side.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response status.
func (c *Client) roundTrip(req []byte) (status byte, body []byte, err error) {
	if err := writeFrame(c.bw, req); err != nil {
		return 0, nil, err
	}
	payload, err := readFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	r := &reader{b: payload}
	status = r.u8("status")
	if r.err != nil {
		return 0, nil, r.err
	}
	body = r.rest()
	if status == statusErr {
		er := &reader{b: body}
		return status, nil, fmt.Errorf("siwire: server: %s", er.str("error message"))
	}
	return status, body, nil
}

// Begin starts a transaction on the connection.
func (c *Client) Begin() error { return c.BeginTraced(0) }

// BeginTraced starts a transaction and propagates a client-assigned
// trace ID (the version-tolerant begin extension): a tracing server
// adopts the ID for its pipeline spans, an old or untracing server
// ignores it. A zero ID sends a plain begin.
func (c *Client) BeginTraced(traceID uint64) error {
	req := []byte{opBegin}
	if traceID != 0 {
		req = appendU64(req, traceID)
	}
	status, _, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("siwire: begin: unexpected status %d", status)
	}
	return nil
}

// Read reads x at the open transaction's snapshot. ErrUninitialized
// reports an object with no version (the transaction stays open).
func (c *Client) Read(x model.Obj) (model.Value, error) {
	status, body, err := c.roundTrip(appendStr([]byte{opRead}, string(x)))
	if err != nil {
		return 0, err
	}
	switch status {
	case statusOK:
		r := &reader{b: body}
		v := model.Value(r.u64("read value"))
		return v, r.err
	case statusUninitialized:
		return 0, ErrUninitialized
	default:
		return 0, fmt.Errorf("siwire: read: unexpected status %d", status)
	}
}

// Write buffers a write into the open transaction.
func (c *Client) Write(x model.Obj, v model.Value) error {
	req := appendStr([]byte{opWrite}, string(x))
	req = appendU64(req, uint64(v))
	status, _, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("siwire: write: unexpected status %d", status)
	}
	return nil
}

// Commit commits the open transaction and returns its durability LSN
// (zero for read-only transactions or volatile servers). ErrConflict
// reports a lost first-committer-wins race; the transaction is
// finished either way. Trailing response bytes (a tracing server's
// trace blob) are ignored — this is exactly the pre-extension parser.
func (c *Client) Commit() (uint64, error) {
	status, body, err := c.roundTrip([]byte{opCommit})
	if err != nil {
		return 0, err
	}
	switch status {
	case statusOK:
		r := &reader{b: body}
		lsn := r.u64("commit lsn")
		return lsn, r.err
	case statusConflict:
		return 0, ErrConflict
	default:
		return 0, fmt.Errorf("siwire: commit: unexpected status %d", status)
	}
}

// CommitResult is CommitTraced's decoded response: the durability LSN
// plus, when the server traces, the server-side trace ID and pipeline
// stage spans of the committed transaction.
type CommitResult struct {
	LSN uint64
	// TraceID is the server's trace ID (the client's, when propagated
	// via BeginTraced); zero when the server does not trace.
	TraceID uint64
	// ServerSpans are the server's pipeline stage spans (lock_wait,
	// validate, install, wal_append, fsync_wait, publish, ack, …),
	// ready to merge into a client-side trace via Trace.AddSpans.
	ServerSpans []txtrace.Span
}

// CommitTraced commits like Commit and additionally decodes the
// server's trace blob when present (absent on old or untracing
// servers: the result then carries only the LSN).
func (c *Client) CommitTraced() (CommitResult, error) {
	status, body, err := c.roundTrip([]byte{opCommit})
	if err != nil {
		return CommitResult{}, err
	}
	switch status {
	case statusOK:
		r := &reader{b: body}
		res := CommitResult{LSN: r.u64("commit lsn")}
		if r.err == nil && r.remaining() > 0 {
			res.TraceID, res.ServerSpans = parseTraceBlob(r)
		}
		return res, r.err
	case statusConflict:
		return CommitResult{}, ErrConflict
	default:
		return CommitResult{}, fmt.Errorf("siwire: commit: unexpected status %d", status)
	}
}

// Abort abandons the open transaction (a no-op when none is open).
func (c *Client) Abort() error {
	status, _, err := c.roundTrip([]byte{opAbort})
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("siwire: abort: unexpected status %d", status)
	}
	return nil
}

// Info fetches the server identity document.
func (c *Client) Info() (Info, error) {
	status, body, err := c.roundTrip([]byte{opInfo})
	if err != nil {
		return Info{}, err
	}
	if status != statusOK {
		return Info{}, fmt.Errorf("siwire: info: unexpected status %d", status)
	}
	var info Info
	if err := json.Unmarshal(body, &info); err != nil {
		return Info{}, fmt.Errorf("siwire: info: %w", err)
	}
	return info, nil
}

// maxTransactRetries bounds Transact's conflict retries.
const maxTransactRetries = 10000

// Transact runs fn inside a transaction with the standard client-side
// retry loop: on ErrConflict from the commit it begins a fresh attempt
// (with a short capped backoff to de-synchronise contending clients);
// on any other error it aborts and returns. It returns the commit's
// durability LSN.
func (c *Client) Transact(fn func(tx *ClientTx) error) (uint64, error) {
	for attempt := 0; attempt < maxTransactRetries; attempt++ {
		if err := c.Begin(); err != nil {
			return 0, err
		}
		if err := fn(&ClientTx{c: c}); err != nil {
			if aerr := c.Abort(); aerr != nil {
				return 0, aerr
			}
			return 0, err
		}
		lsn, err := c.Commit()
		if err == nil {
			return lsn, nil
		}
		if err != ErrConflict {
			return 0, err
		}
		if attempt > 3 {
			backoff := time.Microsecond << uint(min(attempt, 10))
			time.Sleep(backoff)
		}
	}
	return 0, fmt.Errorf("siwire: too many conflict retries")
}

// ClientTx is the transaction handle passed to Transact callbacks.
type ClientTx struct{ c *Client }

// Read reads x at the transaction's snapshot.
func (t *ClientTx) Read(x model.Obj) (model.Value, error) { return t.c.Read(x) }

// Write buffers a write.
func (t *ClientTx) Write(x model.Obj, v model.Value) error { return t.c.Write(x, v) }
