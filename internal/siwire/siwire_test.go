package siwire_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/siwire"
	"sian/internal/storage/wal"
)

// startServer runs an in-process siwire server over an SI engine with
// a WAL driver and returns its address.
func startServer(t *testing.T, dir string) (*siwire.Server, *engine.DB, string) {
	t.Helper()
	drv, err := wal.Open(wal.Options{Dir: dir, NoSync: true, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.New(engine.SI, engine.Config{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	srv := siwire.NewServer(siwire.ServerConfig{
		DB:   db,
		Info: func() siwire.Info { return siwire.Info{Name: "test", Engine: "si", Durable: true} },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Errorf("db Close: %v", err)
		}
	})
	return srv, db, ln.Addr().String()
}

// TestWireBasics covers the whole opcode surface over one connection:
// begin/write/commit, snapshot reads, uninitialized reads, abort,
// info, and the durability LSN on commit responses.
func TestWireBasics(t *testing.T) {
	t.Parallel()
	_, _, addr := startServer(t, t.TempDir())
	c, err := siwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("x"); !errors.Is(err, siwire.ErrUninitialized) {
		t.Fatalf("read of fresh object: %v, want ErrUninitialized", err)
	}
	if err := c.Write("x", 41); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read("x"); err != nil || v != 41 {
		t.Fatalf("read-your-writes: %d, %v", v, err)
	}
	lsn, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Fatal("commit over a durable driver returned LSN 0")
	}

	// Abort leaves no trace.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("x", 99); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read("x"); err != nil || v != 41 {
		t.Fatalf("after abort: %d, %v", v, err)
	}
	if lsn2, err := c.Commit(); err != nil || lsn2 != 0 {
		t.Fatalf("read-only commit: lsn %d, %v (want 0, nil)", lsn2, err)
	}

	info, err := c.Info()
	if err != nil || info.Name != "test" || !info.Durable {
		t.Fatalf("info: %+v, %v", info, err)
	}
}

// TestWireConflictAndRetry pins first-committer-wins over the wire:
// two clients race read-modify-write increments; Transact's retry
// loop must drive the counter to exactly the total attempt count.
func TestWireConflictAndRetry(t *testing.T) {
	t.Parallel()
	_, _, addr := startServer(t, t.TempDir())

	seed, err := siwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Transact(func(tx *siwire.ClientTx) error {
		return tx.Write("ctr", 0)
	}); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := siwire.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			var last uint64
			for i := 0; i < perWorker; i++ {
				lsn, err := c.Transact(func(tx *siwire.ClientTx) error {
					v, err := tx.Read("ctr")
					if err != nil {
						return err
					}
					return tx.Write("ctr", v+1)
				})
				if err != nil {
					t.Errorf("transact: %v", err)
					return
				}
				if lsn <= last {
					t.Errorf("acknowledged LSNs not increasing: %d after %d", lsn, last)
					return
				}
				last = lsn
			}
		}()
	}
	wg.Wait()

	c, err := siwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if v != workers*perWorker {
		t.Errorf("counter = %d, want %d", v, workers*perWorker)
	}
}

// TestWireProtocolErrors pins the error responses: operations without
// an open transaction, double begin.
func TestWireProtocolErrors(t *testing.T) {
	t.Parallel()
	_, _, addr := startServer(t, t.TempDir())
	c, err := siwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Read("x"); err == nil {
		t.Error("read without a transaction succeeded")
	}
	if _, err := c.Commit(); err == nil || errors.Is(err, siwire.ErrConflict) {
		t.Errorf("commit without a transaction: %v", err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err == nil {
		t.Error("double begin succeeded")
	}
}

// TestHTTPFallback drives the JSON endpoint: a write transaction, a
// read-back, per-op results and the durability LSN.
func TestHTTPFallback(t *testing.T) {
	t.Parallel()
	srv, _, _ := startServer(t, t.TempDir())
	hs := httptest.NewServer(srv.HTTPHandler())
	defer hs.Close()

	post := func(body string) (int, siwire.HTTPResponse) {
		t.Helper()
		resp, err := hs.Client().Post(hs.URL+"/v1/transact", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out siwire.HTTPResponse
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	code, out := post(`{"ops":[{"op":"write","obj":"h","val":7}]}`)
	if code != 200 || out.LSN == 0 {
		t.Fatalf("write transact: code %d, %+v", code, out)
	}
	code, out = post(`{"ops":[{"op":"read","obj":"h"},{"op":"write","obj":"h","val":8},{"op":"read","obj":"h"}]}`)
	if code != 200 {
		t.Fatalf("rmw transact: code %d", code)
	}
	if len(out.Results) != 3 || out.Results[0] == nil || *out.Results[0] != 7 ||
		out.Results[1] != nil || out.Results[2] == nil || *out.Results[2] != 8 {
		t.Fatalf("rmw results: %v", fmtResults(out.Results))
	}
	if code, _ := post(`{"ops":[{"op":"read","obj":"missing"}]}`); code != 422 {
		t.Errorf("uninitialized read: code %d, want 422", code)
	}
	if code, _ := post(`{"ops":[{"op":"bogus","obj":"h"}]}`); code != 400 {
		t.Errorf("bad op: code %d, want 400", code)
	}

	// Info endpoint.
	resp, err := hs.Client().Get(hs.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info siwire.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "test" {
		t.Errorf("info: %+v", info)
	}
}

func fmtResults(rs []*model.Value) string {
	out := ""
	for _, r := range rs {
		if r == nil {
			out += "nil "
		} else {
			out += fmt.Sprint(*r, " ")
		}
	}
	return out
}

// TestServerCloseAbortsOpenTx pins shutdown semantics: closing the
// server severs connections and aborts their open transactions, so a
// later client never sees half a transaction.
func TestServerCloseAbortsOpenTx(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	srv, db, addr := startServer(t, dir)
	c, err := siwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Transact(func(tx *siwire.ClientTx) error { return tx.Write("x", 1) }); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The buffered write died with the connection.
	sess := db.Session("check")
	m, err := sess.Begin("check")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Abort()
	if v, err := m.Read("x"); err != nil || v != 1 {
		t.Fatalf("after server close: x = %d, %v (want 1)", v, err)
	}
}
