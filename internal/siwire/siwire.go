// Package siwire is the wire protocol of the networked transactional
// KV server (cmd/siserve): a length-prefixed binary framing over TCP
// in which one connection is one engine session driving at most one
// interactive transaction at a time, plus an HTTP/JSON fallback for
// clients without the binary codec (Server.HTTPHandler).
//
// # Framing
//
// A connection opens with the 8-byte magic "SIWIRE01" from the client.
// After it, both directions exchange frames:
//
//	frame    := u32 payloadLen | payload        (big-endian, ≤ 1 MiB)
//	request  := u8 op  | body
//	response := u8 status | body
//
// Strings are u32 length + bytes; values (model.Value) travel as their
// two's-complement uint64 bits. Requests:
//
//	begin  (1): —               start a transaction on this connection
//	read   (2): str obj         read at the transaction's snapshot
//	write  (3): str obj, i64 v  buffer a write
//	commit (4): —               commit; ok carries u64 LSN
//	abort  (5): —               abandon the transaction
//	info   (6): —               server identity/durability JSON
//
// Statuses: ok (0, body per op), conflict (1, the transaction lost a
// first-committer-wins race and is finished — begin again and retry),
// uninitialized (2, the read object has no version; the transaction
// stays open), error (3, str message; the connection's transaction, if
// any, is aborted).
//
// # Trace propagation (version-tolerant extension)
//
// A tracing client may append a u64 trace ID to the begin request; a
// tracing server adopts it for the transaction's txtrace trace, so the
// client's wire spans and the server's pipeline spans share one ID. A
// tracing server in turn appends a trace blob after the LSN of the
// commit ok body:
//
//	blob  := u64 traceID | u32 nspans | nspans × span
//	span  := str stage | u64 startNS | u64 endNS | u32 nattrs | nattrs × (str key | u64 val)
//
// Both extensions are backward- and forward-compatible by
// construction: the original begin handler reads no body (extra bytes
// are ignored), and the original commit parser reads exactly one u64
// and discards the rest. A client or server that does not trace simply
// omits its half, and the other side degrades gracefully.
//
// The server never retries: conflict handling is the client's
// (Client.Transact implements the standard retry loop). A commit's ok
// response is sent only after the engine acknowledged the commit —
// over a durable driver, after the record is fsynced — so a client
// that saw ok owns a durable commit; the returned LSN is its
// durability token.
package siwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"sian/internal/obs/txtrace"
)

// Magic opens every binary connection.
const Magic = "SIWIRE01"

// MaxFrame bounds a frame payload (1 MiB): far above any sane
// transaction, low enough to reject garbage length prefixes.
const MaxFrame = 1 << 20

// Request opcodes.
const (
	opBegin  byte = 1
	opRead   byte = 2
	opWrite  byte = 3
	opCommit byte = 4
	opAbort  byte = 5
	opInfo   byte = 6
)

// Response statuses.
const (
	statusOK            byte = 0
	statusConflict      byte = 1
	statusUninitialized byte = 2
	statusErr           byte = 3
)

// Sentinel errors mirrored across the wire.
var (
	// ErrConflict reports a commit lost to first-committer-wins; the
	// transaction is finished, begin again to retry.
	ErrConflict = errors.New("siwire: transaction aborted by conflict")
	// ErrUninitialized reports a read of an object with no version.
	ErrUninitialized = errors.New("siwire: object not initialised")
)

// writeFrame emits one length-prefixed frame and flushes.
func writeFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("siwire: frame payload %d exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one length-prefixed frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("siwire: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// reader decodes a frame body with sticky errors.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("siwire: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u8(what string) byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) str(what string) string {
	n := r.u32(what)
	if r.err != nil || r.off+int(n) > len(r.b) || int(n) < 0 {
		r.fail(what)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	return r.b[r.off:]
}

// remaining reports how many undecoded bytes the frame still holds.
func (r *reader) remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.b) - r.off
}

// appendTraceBlob appends the commit response's trace blob (see the
// package doc): the server's trace ID and pipeline spans. A nil td
// appends nothing, which old and new clients alike parse as "server
// not tracing".
func appendTraceBlob(b []byte, td *txtrace.TraceData) []byte {
	if td == nil {
		return b
	}
	b = appendU64(b, td.ID())
	b = appendU32(b, uint32(len(td.Spans)))
	for _, sp := range td.Spans {
		b = appendStr(b, string(sp.Stage))
		b = appendU64(b, uint64(sp.Start))
		b = appendU64(b, uint64(sp.End))
		b = appendU32(b, uint32(len(sp.Attrs)))
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendStr(b, k)
			b = appendU64(b, uint64(sp.Attrs[k]))
		}
	}
	return b
}

// parseTraceBlob decodes a trace blob. Callers check remaining() > 0
// first; a malformed blob surfaces as the reader's sticky error.
func parseTraceBlob(r *reader) (traceID uint64, spans []txtrace.Span) {
	traceID = r.u64("trace id")
	n := r.u32("trace span count")
	if r.err != nil {
		return 0, nil
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		sp := txtrace.Span{
			Stage: txtrace.Stage(r.str("span stage")),
			Start: int64(r.u64("span start")),
			End:   int64(r.u64("span end")),
		}
		na := r.u32("span attr count")
		for j := uint32(0); j < na && r.err == nil; j++ {
			k := r.str("attr key")
			v := int64(r.u64("attr value"))
			if r.err == nil {
				if sp.Attrs == nil {
					sp.Attrs = make(map[string]int64, na)
				}
				sp.Attrs[k] = v
			}
		}
		if r.err == nil {
			spans = append(spans, sp)
		}
	}
	if r.err != nil {
		return 0, nil
	}
	return traceID, spans
}

// Info is the server identity document returned by the info request
// (and GET /v1/info on the HTTP plane).
type Info struct {
	// Name is the serving binary ("siserve"); Engine the isolation
	// level it runs ("si").
	Name   string `json:"name"`
	Engine string `json:"engine"`
	// GitRev is the server build's git revision, recorded by clients
	// into benchmark ledger entries for baseline comparability.
	GitRev string `json:"git_rev,omitempty"`
	// Durable reports a WAL-backed store; the recovery fields describe
	// the last startup's replay when so.
	Durable           bool   `json:"durable"`
	RecoveryCertified bool   `json:"recovery_certified,omitempty"`
	RecoveryVerdict   string `json:"recovery_verdict,omitempty"`
	RecoveredCommits  int64  `json:"recovered_commits,omitempty"`
	// AppendedLSN and SyncedLSN snapshot the WAL frontier; their gap
	// is the current fsync lag in records.
	AppendedLSN uint64 `json:"appended_lsn,omitempty"`
	SyncedLSN   uint64 `json:"synced_lsn,omitempty"`
}
