// Package execution implements abstract executions (T, SO, VIS, CO)
// per Definition 3 of the paper, the consistency axioms of Figure 1
// (INT, EXT, SESSION, PREFIX, NOCONFLICT, TOTALVIS, TRANSVIS), the
// consistency-model membership predicates of Definitions 4 and 20
// (ExecSI, ExecSER, ExecPSI), and the graph(X) dependency extraction of
// Definition 5.
package execution

import (
	"errors"
	"fmt"

	"sian/internal/model"
	"sian/internal/relation"
)

// Execution is an abstract execution X = (H, VIS, CO). VIS and CO are
// relations over the transaction indices of H. Definition 3 requires
// VIS to be a strict partial order, CO a strict total order and
// VIS ⊆ CO; Validate checks these.
//
// A pre-execution (Definition 11) is the same structure with a CO that
// is a strict partial order but not necessarily total; the axiom
// checkers below apply unchanged, so the type serves both roles and
// IsTotal distinguishes them.
type Execution struct {
	History *model.History
	VIS     *relation.Rel
	CO      *relation.Rel
}

// New bundles a history with visibility and commit orders. It copies
// neither relation; callers that keep mutating them should Clone
// first.
func New(h *model.History, vis, co *relation.Rel) *Execution {
	return &Execution{History: h, VIS: vis, CO: co}
}

// Validate checks the structural requirements of Definition 3 with CO
// allowed to be partial (Definition 11's pre-executions): VIS and CO
// strict partial orders and VIS ⊆ CO. Use ValidateTotal for full
// executions.
func (x *Execution) Validate() error {
	n := x.History.NumTransactions()
	if x.VIS.N() != n || x.CO.N() != n {
		return fmt.Errorf("execution: relation carrier %d/%d does not match %d transactions",
			x.VIS.N(), x.CO.N(), n)
	}
	if !x.VIS.IsStrictPartialOrder() {
		return errors.New("execution: VIS is not a strict partial order")
	}
	if !x.CO.IsStrictPartialOrder() {
		return errors.New("execution: CO is not a strict partial order")
	}
	if !x.VIS.SubsetOf(x.CO) {
		return errors.New("execution: VIS ⊄ CO")
	}
	return nil
}

// ValidateTotal checks Definition 3 in full: Validate plus totality of
// CO.
func (x *Execution) ValidateTotal() error {
	if err := x.Validate(); err != nil {
		return err
	}
	if !x.CO.IsTotal() {
		return errors.New("execution: CO is not total")
	}
	return nil
}

// An Axiom is one of the named consistency axioms of Figure 1 plus
// TRANSVIS of Definition 20.
type Axiom int

// Axioms, in the order of Figure 1.
const (
	AxiomInvalid Axiom = iota
	Int
	Ext
	Session
	Prefix
	NoConflict
	TotalVis
	TransVis
)

// String returns the paper's name for the axiom.
func (a Axiom) String() string {
	switch a {
	case Int:
		return "INT"
	case Ext:
		return "EXT"
	case Session:
		return "SESSION"
	case Prefix:
		return "PREFIX"
	case NoConflict:
		return "NOCONFLICT"
	case TotalVis:
		return "TOTALVIS"
	case TransVis:
		return "TRANSVIS"
	default:
		return fmt.Sprintf("Axiom(%d)", int(a))
	}
}

// Check verifies a single axiom against the execution and returns a
// descriptive error on the first violation found, or nil.
func (x *Execution) Check(a Axiom) error {
	switch a {
	case Int:
		return x.History.CheckInt()
	case Ext:
		return x.checkExt()
	case Session:
		return x.checkSession()
	case Prefix:
		return x.checkPrefix()
	case NoConflict:
		return x.checkNoConflict()
	case TotalVis:
		return x.checkTotalVis()
	case TransVis:
		return x.checkTransVis()
	default:
		return fmt.Errorf("execution: unknown axiom %v", a)
	}
}

// CheckAll verifies every axiom in the list, returning the first
// violation.
func (x *Execution) CheckAll(axioms ...Axiom) error {
	for _, a := range axioms {
		if err := x.Check(a); err != nil {
			return fmt.Errorf("%v: %w", a, err)
		}
	}
	return nil
}

// SIAxioms is the axiom set of ExecSI (Definition 4).
func SIAxioms() []Axiom { return []Axiom{Int, Ext, Session, Prefix, NoConflict} }

// SERAxioms is the axiom set of ExecSER (Definition 4).
func SERAxioms() []Axiom { return []Axiom{Int, Ext, Session, TotalVis} }

// PSIAxioms is the axiom set of ExecPSI (Definition 20).
func PSIAxioms() []Axiom { return []Axiom{Int, Ext, Session, TransVis, NoConflict} }

// PCAxioms is the axiom set of prefix consistency: SI without the
// NOCONFLICT axiom. The paper's §7 anticipates a dependency-graph
// characterisation for this model ("prefix consistency [33]"); this
// module provides one, validated against these axioms (see
// internal/core and internal/check).
func PCAxioms() []Axiom { return []Axiom{Int, Ext, Session, Prefix} }

// GSIAxioms is the axiom set of generalised SI [17], which §2 of the
// paper contrasts with the strong session variant it adopts: SI
// without the SESSION axiom, so a transaction's snapshot need not
// include its own session's earlier transactions.
func GSIAxioms() []Axiom { return []Axiom{Int, Ext, Prefix, NoConflict} }

// IsSI reports whether the execution is in ExecSI: it is a valid total
// execution satisfying INT, EXT, SESSION, PREFIX and NOCONFLICT.
func (x *Execution) IsSI() error {
	if err := x.ValidateTotal(); err != nil {
		return err
	}
	return x.CheckAll(SIAxioms()...)
}

// IsPreSI reports whether the pre-execution is in PreExecSI
// (Definition 11): a valid pre-execution (partial CO allowed)
// satisfying the SI axioms.
func (x *Execution) IsPreSI() error {
	if err := x.Validate(); err != nil {
		return err
	}
	return x.CheckAll(SIAxioms()...)
}

// IsSER reports whether the execution is in ExecSER.
func (x *Execution) IsSER() error {
	if err := x.ValidateTotal(); err != nil {
		return err
	}
	return x.CheckAll(SERAxioms()...)
}

// IsPSI reports whether the execution is in ExecPSI.
func (x *Execution) IsPSI() error {
	if err := x.ValidateTotal(); err != nil {
		return err
	}
	return x.CheckAll(PSIAxioms()...)
}

// IsPC reports whether the execution satisfies prefix consistency:
// a valid total execution satisfying INT, EXT, SESSION and PREFIX
// (SI without write-conflict detection).
func (x *Execution) IsPC() error {
	if err := x.ValidateTotal(); err != nil {
		return err
	}
	return x.CheckAll(PCAxioms()...)
}

// IsGSI reports whether the execution satisfies generalised SI: a
// valid total execution satisfying INT, EXT, PREFIX and NOCONFLICT
// (SI without session guarantees).
func (x *Execution) IsGSI() error {
	if err := x.ValidateTotal(); err != nil {
		return err
	}
	return x.CheckAll(GSIAxioms()...)
}

// checkSession verifies SO ⊆ VIS.
func (x *Execution) checkSession() error {
	so := x.History.SessionOrder()
	if !so.SubsetOf(x.VIS) {
		for _, p := range so.Minus(x.VIS).Pairs() {
			return fmt.Errorf("SO edge (%d,%d) missing from VIS", p[0], p[1])
		}
	}
	return nil
}

// checkPrefix verifies CO ; VIS ⊆ VIS.
func (x *Execution) checkPrefix() error {
	comp := x.CO.Compose(x.VIS)
	if !comp.SubsetOf(x.VIS) {
		for _, p := range comp.Minus(x.VIS).Pairs() {
			return fmt.Errorf("CO;VIS edge (%d,%d) missing from VIS", p[0], p[1])
		}
	}
	return nil
}

// checkTransVis verifies VIS ; VIS ⊆ VIS.
func (x *Execution) checkTransVis() error {
	if !x.VIS.IsTransitive() {
		return errors.New("VIS is not transitive")
	}
	return nil
}

// checkTotalVis verifies CO = VIS.
func (x *Execution) checkTotalVis() error {
	if !x.VIS.Equal(x.CO) {
		return errors.New("VIS ≠ CO")
	}
	return nil
}

// checkNoConflict verifies that any two distinct transactions writing
// to the same object are related by VIS one way or the other.
func (x *Execution) checkNoConflict() error {
	for _, obj := range x.History.Objects() {
		writers := x.History.WriteTx(obj)
		for i, a := range writers {
			for _, b := range writers[i+1:] {
				if !x.VIS.Has(a, b) && !x.VIS.Has(b, a) {
					return fmt.Errorf("writers %d and %d of %q unrelated by VIS", a, b, obj)
				}
			}
		}
	}
	return nil
}

// visibleWriter computes max_CO(VIS⁻¹(S) ∩ WriteTx_x): the transaction
// whose write to x the transaction with index s must read per EXT. The
// second result is false when the set is empty. An error is returned
// when CO does not totally order the candidate set (possible for
// pre-executions with insufficient CO; EXT is then not well-defined
// for this read).
func (x *Execution) visibleWriter(s int, obj model.Obj) (int, bool, error) {
	var candidates []int
	for _, w := range x.History.WriteTx(obj) {
		if x.VIS.Has(w, s) {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return 0, false, nil
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		switch {
		case x.CO.Has(best, c):
			best = c
		case x.CO.Has(c, best):
			// keep best
		default:
			return 0, false, fmt.Errorf(
				"CO does not order visible writers %d and %d of %q", best, c, obj)
		}
	}
	return best, true, nil
}

// checkExt verifies EXT: whenever T ⊢ read(x, n), the CO-maximal
// VIS-visible writer of x wrote n as its final value.
func (x *Execution) checkExt() error {
	n := x.History.NumTransactions()
	for s := 0; s < n; s++ {
		t := x.History.Transaction(s)
		for _, obj := range t.Objects() {
			val, reads := t.ReadsBeforeWrites(obj)
			if !reads {
				continue
			}
			w, ok, err := x.visibleWriter(s, obj)
			if err != nil {
				return fmt.Errorf("transaction %d reads %q: %w", s, obj, err)
			}
			if !ok {
				return fmt.Errorf("transaction %d reads %q but sees no writer (missing init transaction?)",
					s, obj)
			}
			written, _ := x.History.Transaction(w).FinalWrite(obj)
			if written != val {
				return fmt.Errorf("transaction %d reads (%q, %d) but visible writer %d wrote %d",
					s, obj, val, w, written)
			}
		}
	}
	return nil
}
