package execution

import (
	"strings"
	"testing"

	"sian/internal/model"
	"sian/internal/relation"
)

// orderRel builds a strict total order relation from a permutation.
func orderRel(n int, order []int) *relation.Rel {
	r := relation.New(n)
	for i, a := range order {
		for _, b := range order[i+1:] {
			r.Add(a, b)
		}
	}
	return r
}

// writeSkewHistory is Figure 2(d) with an explicit init transaction:
// 0 init, 1 T1, 2 T2.
func writeSkewHistory() *model.History {
	return model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("a1", 60), model.Write("a2", 60)),
		}},
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("a1", 60), model.Read("a2", 60), model.Write("a1", -40)),
		}},
		model.Session{ID: "s2", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("a1", 60), model.Read("a2", 60), model.Write("a2", -40)),
		}},
	)
}

// writeSkewExecution builds the canonical SI execution of write skew:
// CO = init < T1 < T2, VIS = {init→T1, init→T2} (the two withdrawals
// do not see each other).
func writeSkewExecution() *Execution {
	h := writeSkewHistory()
	vis := relation.New(3)
	vis.Add(0, 1)
	vis.Add(0, 2)
	co := orderRel(3, []int{0, 1, 2})
	return New(h, vis, co)
}

func TestValidate(t *testing.T) {
	t.Parallel()
	x := writeSkewExecution()
	if err := x.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := x.ValidateTotal(); err != nil {
		t.Fatalf("ValidateTotal: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	t.Parallel()
	h := writeSkewHistory()
	co := orderRel(3, []int{0, 1, 2})
	tests := []struct {
		name string
		vis  *relation.Rel
		co   *relation.Rel
		want string
	}{
		{
			name: "VIS not in CO",
			vis: func() *relation.Rel {
				v := relation.New(3)
				v.Add(2, 1) // contradicts CO
				return v
			}(),
			co:   co,
			want: "VIS ⊄ CO",
		},
		{
			name: "reflexive VIS",
			vis: func() *relation.Rel {
				v := relation.New(3)
				v.Add(1, 1)
				return v
			}(),
			co:   co,
			want: "strict partial order",
		},
		{
			name: "non-transitive CO",
			vis:  relation.New(3),
			co: func() *relation.Rel {
				c := relation.New(3)
				c.Add(0, 1)
				c.Add(1, 2)
				return c
			}(),
			want: "not a strict partial order",
		},
		{
			name: "carrier mismatch",
			vis:  relation.New(2),
			co:   relation.New(2),
			want: "carrier",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			x := New(h, tc.vis, tc.co)
			err := x.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid execution")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateTotalRequiresTotality(t *testing.T) {
	t.Parallel()
	h := writeSkewHistory()
	co := relation.New(3)
	co.Add(0, 1)
	co.Add(0, 2)
	x := New(h, relation.New(3), co)
	if err := x.Validate(); err != nil {
		t.Fatalf("partial CO should pass Validate: %v", err)
	}
	if err := x.ValidateTotal(); err == nil {
		t.Fatal("ValidateTotal accepted a partial CO")
	}
}

func TestWriteSkewIsSINotSER(t *testing.T) {
	t.Parallel()
	x := writeSkewExecution()
	if err := x.IsSI(); err != nil {
		t.Errorf("write skew should satisfy the SI axioms: %v", err)
	}
	if err := x.IsPSI(); err != nil {
		t.Errorf("write skew should satisfy the PSI axioms: %v", err)
	}
	if err := x.IsSER(); err == nil {
		t.Error("write skew must not satisfy TOTALVIS")
	}
}

func TestAxiomSession(t *testing.T) {
	t.Parallel()
	// T1 and T2 in one session; VIS missing the SO edge.
	h := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("T1", model.Write("x", 1)),
		model.NewTransaction("T2", model.Read("x", 1)),
	}})
	co := orderRel(2, []int{0, 1})
	bad := New(h, relation.New(2), co)
	if err := bad.Check(Session); err == nil {
		t.Error("SESSION violation not caught")
	}
	vis := relation.New(2)
	vis.Add(0, 1)
	good := New(h, vis, co)
	if err := good.Check(Session); err != nil {
		t.Errorf("SESSION: %v", err)
	}
}

func TestAxiomPrefix(t *testing.T) {
	t.Parallel()
	// Three transactions: init(x,y), T1 writes x, T2 reads x.
	h := model.NewHistory(
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("x", 0), model.Write("y", 0)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
		}},
		model.Session{ID: "c", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("x", 1)),
		}},
	)
	co := orderRel(3, []int{0, 1, 2})
	// VIS sees T1 but not its CO-predecessor T0: PREFIX violated.
	vis := relation.New(3)
	vis.Add(1, 2)
	x := New(h, vis, co)
	if err := x.Check(Prefix); err == nil {
		t.Error("PREFIX violation not caught")
	}
	vis.Add(0, 2)
	vis.Add(0, 1)
	if err := x.Check(Prefix); err != nil {
		t.Errorf("PREFIX: %v", err)
	}
}

func TestAxiomNoConflict(t *testing.T) {
	t.Parallel()
	// Lost update: T1 and T2 both write acct, unrelated by VIS.
	h := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("acct", 0)),
		}},
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("acct", 0), model.Write("acct", 50)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("acct", 0), model.Write("acct", 25)),
		}},
	)
	vis := relation.New(3)
	vis.Add(0, 1)
	vis.Add(0, 2)
	co := orderRel(3, []int{0, 1, 2})
	x := New(h, vis, co)
	if err := x.Check(NoConflict); err == nil {
		t.Error("NOCONFLICT violation not caught")
	}
	// Making T1 visible to T2 satisfies NOCONFLICT but breaks EXT
	// (T2 reads 0, but T1's write 50 is now the latest visible).
	vis.Add(1, 2)
	if err := x.Check(NoConflict); err != nil {
		t.Errorf("NOCONFLICT: %v", err)
	}
	if err := x.Check(Ext); err == nil {
		t.Error("EXT violation not caught after widening VIS")
	}
}

func TestAxiomExt(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("x", 1)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 2)),
		}},
		model.Session{ID: "c", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("x", 1)),
		}},
	)
	co := orderRel(3, []int{0, 1, 2})
	// T2 sees both writers; the CO-max is T1 which wrote 2, but T2
	// read 1: EXT violated.
	vis := relation.New(3)
	vis.Add(0, 2)
	vis.Add(1, 2)
	vis.Add(0, 1)
	x := New(h, vis, co)
	if err := x.Check(Ext); err == nil {
		t.Error("EXT violation not caught")
	}
	// Narrowing T2's snapshot to T0 fixes the read.
	vis2 := relation.New(3)
	vis2.Add(0, 2)
	vis2.Add(0, 1)
	x2 := New(h, vis2, co)
	if err := x2.Check(Ext); err != nil {
		t.Errorf("EXT: %v", err)
	}
}

func TestAxiomExtNoWriter(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(model.Session{ID: "a", Transactions: []model.Transaction{
		model.NewTransaction("T0", model.Read("ghost", 0)),
	}})
	x := New(h, relation.New(1), relation.New(1))
	err := x.Check(Ext)
	if err == nil || !strings.Contains(err.Error(), "no writer") {
		t.Errorf("EXT without init transaction: %v", err)
	}
}

func TestAxiomExtReadOwnObjectLater(t *testing.T) {
	t.Parallel()
	// T1 reads x then writes it: the read is still external.
	h := model.NewHistory(
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("x", 7)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("x", 7), model.Write("x", 8)),
		}},
	)
	vis := relation.New(2)
	vis.Add(0, 1)
	co := orderRel(2, []int{0, 1})
	x := New(h, vis, co)
	if err := x.Check(Ext); err != nil {
		t.Errorf("EXT: %v", err)
	}
}

func TestAxiomTransVisAndTotalVis(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(
		model.Session{ID: "a", Transactions: []model.Transaction{model.NewTransaction("T0", model.Write("x", 1))}},
		model.Session{ID: "b", Transactions: []model.Transaction{model.NewTransaction("T1", model.Write("y", 1))}},
		model.Session{ID: "c", Transactions: []model.Transaction{model.NewTransaction("T2", model.Write("z", 1))}},
	)
	co := orderRel(3, []int{0, 1, 2})
	vis := relation.New(3)
	vis.Add(0, 1)
	vis.Add(1, 2)
	x := New(h, vis, co)
	if err := x.Check(TransVis); err == nil {
		t.Error("TRANSVIS violation not caught (missing 0→2)")
	}
	vis.Add(0, 2)
	if err := x.Check(TransVis); err != nil {
		t.Errorf("TRANSVIS: %v", err)
	}
	partial := relation.New(3)
	partial.Add(0, 1)
	if err := New(h, partial, co).Check(TotalVis); err == nil {
		t.Error("TOTALVIS should fail while VIS ≠ CO")
	}
	full := New(h, co.Clone(), co)
	if err := full.Check(TotalVis); err != nil {
		t.Errorf("TOTALVIS: %v", err)
	}
}

func TestCheckAllReportsAxiomName(t *testing.T) {
	t.Parallel()
	x := writeSkewExecution()
	err := x.CheckAll(SERAxioms()...)
	if err == nil {
		t.Fatal("expected TOTALVIS failure")
	}
	if !strings.Contains(err.Error(), "TOTALVIS") {
		t.Errorf("error %q should name the axiom", err)
	}
}

func TestAxiomStrings(t *testing.T) {
	t.Parallel()
	names := map[Axiom]string{
		Int: "INT", Ext: "EXT", Session: "SESSION", Prefix: "PREFIX",
		NoConflict: "NOCONFLICT", TotalVis: "TOTALVIS", TransVis: "TRANSVIS",
	}
	for a, want := range names {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
	if err := writeSkewExecution().Check(Axiom(42)); err == nil {
		t.Error("unknown axiom accepted")
	}
}

func TestSerializableExecution(t *testing.T) {
	t.Parallel()
	// init; T1 increments x; T2 reads the result. Serial order works.
	h := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("x", 0)),
		}},
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("x", 0), model.Write("x", 1)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("x", 1)),
		}},
	)
	co := orderRel(3, []int{0, 1, 2})
	x := New(h, co.Clone(), co)
	if err := x.IsSER(); err != nil {
		t.Errorf("IsSER: %v", err)
	}
	if err := x.IsSI(); err != nil {
		t.Errorf("serializable execution should also satisfy SI: %v", err)
	}
	if err := x.IsPSI(); err != nil {
		t.Errorf("serializable execution should also satisfy PSI: %v", err)
	}
}

func TestIsPreSIAllowsPartialCO(t *testing.T) {
	t.Parallel()
	// Two independent writers of different objects, no reads: a
	// pre-execution with empty VIS/CO satisfies the SI axioms.
	h := model.NewHistory(
		model.Session{ID: "a", Transactions: []model.Transaction{model.NewTransaction("T0", model.Write("x", 1))}},
		model.Session{ID: "b", Transactions: []model.Transaction{model.NewTransaction("T1", model.Write("y", 1))}},
	)
	x := New(h, relation.New(2), relation.New(2))
	if err := x.IsPreSI(); err != nil {
		t.Errorf("IsPreSI: %v", err)
	}
	if err := x.IsSI(); err == nil {
		t.Error("IsSI must require a total CO")
	}
}

// TestPCAndGSIAxiomSets: a lost-update-shaped execution satisfies the
// PC axioms (no NOCONFLICT) but not SI; a session-order-violating one
// satisfies GSI but not SI.
func TestPCAndGSIAxiomSets(t *testing.T) {
	t.Parallel()
	// Lost update: init < T1 < T2 in CO, VIS only init→{T1,T2}.
	h := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("acct", 0)),
		}},
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read("acct", 0), model.Write("acct", 50)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("acct", 0), model.Write("acct", 25)),
		}},
	)
	vis := relation.New(3)
	vis.Add(0, 1)
	vis.Add(0, 2)
	co := orderRel(3, []int{0, 1, 2})
	x := New(h, vis, co)
	if err := x.IsPC(); err != nil {
		t.Errorf("IsPC: %v", err)
	}
	if err := x.IsSI(); err == nil {
		t.Error("lost update satisfies the SI axioms")
	}
	if err := x.IsGSI(); err == nil {
		t.Error("lost update satisfies the GSI axioms (NOCONFLICT must fail)")
	}

	// Stale session read: T1 writes x, T2 (same session) reads from
	// init. CO: init < T1 < T2, VIS: init→T1, init→T2 only.
	h2 := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("T0", model.Write("x", 0)),
		}},
		model.Session{ID: "s", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
			model.NewTransaction("T2", model.Read("x", 0)),
		}},
	)
	vis2 := relation.New(3)
	vis2.Add(0, 1)
	vis2.Add(0, 2)
	x2 := New(h2, vis2, orderRel(3, []int{0, 1, 2}))
	if err := x2.IsGSI(); err != nil {
		t.Errorf("IsGSI: %v", err)
	}
	if err := x2.IsPC(); err == nil {
		t.Error("stale session read satisfies the PC axioms (SESSION must fail)")
	}
	if err := x2.IsSI(); err == nil {
		t.Error("stale session read satisfies the SI axioms")
	}
	// Axiom set accessors are non-empty and include the differences.
	if len(PCAxioms()) != 4 || len(GSIAxioms()) != 4 {
		t.Error("extension axiom sets wrong size")
	}
}
