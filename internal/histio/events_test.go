package histio

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"sian/internal/obs/eventlog"
	"sian/internal/workload"
)

func sampleEvents() []eventlog.Event {
	return []eventlog.Event{
		{Seq: 1, TS: 100, Kind: eventlog.Begin, Session: "s1", TxID: "s1#1"},
		{Seq: 2, TS: 110, Kind: eventlog.Read, Session: "s1", TxID: "s1#1", Obj: "x", Val: 0},
		{Seq: 3, TS: 120, Kind: eventlog.Write, Session: "s1", TxID: "s1#1", Obj: "x", Val: 7},
		{Seq: 4, TS: 130, Kind: eventlog.Commit, Session: "s1", TxID: "s1#1", Name: "s1/1"},
		{Seq: 5, TS: 140, Kind: eventlog.Conflict, Session: "s2", TxID: "s2#1"},
		{Seq: 6, TS: 150, Kind: eventlog.Abort, Session: "s2", TxID: "s2#2"},
	}
}

func TestEventsRoundTrip(t *testing.T) {
	t.Parallel()
	in := sampleEvents()
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, in); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(in) {
		t.Errorf("NDJSON lines = %d, want %d", n, len(in))
	}
	out, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed events:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestEventScannerStreaming(t *testing.T) {
	t.Parallel()
	// A pipe delivers lines incrementally: the scanner must return
	// each event as soon as its line is complete, without waiting for
	// EOF — the tail-reader contract simon relies on.
	pr, pw := io.Pipe()
	var encoded bytes.Buffer
	if err := EncodeEvents(&encoded, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(encoded.String(), "\n"), "\n")
	go func() {
		for _, line := range lines {
			if _, err := io.WriteString(pw, line); err != nil {
				return
			}
		}
		pw.Close()
	}()
	sc := NewEventScanner(pr)
	var got []eventlog.Event
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(got, sampleEvents()) {
		t.Errorf("streamed events differ:\ngot:  %+v\nwant: %+v", got, sampleEvents())
	}
}

func TestEventScannerBlankLinesAndFinalUnterminated(t *testing.T) {
	t.Parallel()
	in := "\n" + `{"seq":1,"ts":1,"kind":"begin","session":"s","tx":"s#1"}` + "\n\n" +
		`{"seq":2,"ts":2,"kind":"commit","session":"s","tx":"s#1","name":"s/1"}` // no trailing newline
	sc := NewEventScanner(strings.NewReader(in))
	var kinds []eventlog.Kind
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != eventlog.Begin || kinds[1] != eventlog.Commit {
		t.Errorf("kinds = %v, want [begin commit]", kinds)
	}
}

func TestEventScannerErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, in string
	}{
		{"truncated json", `{"seq":1,"ts":1,"kind":"beg`},
		{"unknown kind", `{"seq":1,"ts":1,"kind":"frobnicate"}` + "\n"},
		{"unknown field", `{"seq":1,"kind":"begin","bogus":true}` + "\n"},
		{"read without object", `{"seq":1,"kind":"read","session":"s","tx":"t"}` + "\n"},
		{"trailing garbage", `{"seq":1,"kind":"begin"} {"seq":2}` + "\n"},
		{"not json", "hello world\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sc := NewEventScanner(strings.NewReader(tc.in))
			if _, err := sc.Next(); err == nil || err == io.EOF {
				t.Fatalf("Next() err = %v, want decode error", err)
			}
			// The scanner stays poisoned.
			if _, err := sc.Next(); err == nil || err == io.EOF {
				t.Errorf("poisoned scanner returned err = %v", err)
			}
		})
	}
}

func TestLooksLikeHistory(t *testing.T) {
	t.Parallel()
	var h bytes.Buffer
	if err := EncodeHistory(&h, workload.WriteSkew().History); err != nil {
		t.Fatal(err)
	}
	if !LooksLikeHistory(h.Bytes()[:32]) {
		t.Error("encoded history not detected")
	}
	var e bytes.Buffer
	if err := EncodeEvents(&e, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if LooksLikeHistory(e.Bytes()[:32]) {
		t.Error("event stream misdetected as history")
	}
	if LooksLikeHistory(nil) || LooksLikeHistory([]byte("  \n")) {
		t.Error("empty input misdetected as history")
	}
}

func TestHistoryToEvents(t *testing.T) {
	t.Parallel()
	h := workload.LostUpdate().History
	events := HistoryToEvents(h)
	begins, commits := 0, 0
	var names []string
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
		switch ev.Kind {
		case eventlog.Begin:
			begins++
		case eventlog.Commit:
			commits++
			names = append(names, ev.Name)
		}
	}
	if begins != h.NumTransactions() || commits != h.NumTransactions() {
		t.Errorf("begins/commits = %d/%d, want %d each", begins, commits, h.NumTransactions())
	}
	for i, name := range names {
		if want := h.Transaction(i).ID; want != "" && name != want {
			t.Errorf("commit %d name = %q, want %q", i, name, want)
		}
	}
	// The stream round-trips through NDJSON.
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Error("HistoryToEvents stream does not round-trip")
	}
}
