package histio

import (
	"bytes"
	"strings"
	"testing"

	"sian/internal/model"
	"sian/internal/workload"
)

func TestHistoryRoundTrip(t *testing.T) {
	t.Parallel()
	orig := workload.WriteSkew().History
	var buf bytes.Buffer
	if err := EncodeHistory(&buf, orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeHistory(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.NumTransactions() != orig.NumTransactions() || back.NumSessions() != orig.NumSessions() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			back.NumTransactions(), back.NumSessions(), orig.NumTransactions(), orig.NumSessions())
	}
	for i := 0; i < orig.NumTransactions(); i++ {
		a, b := orig.Transaction(i), back.Transaction(i)
		if a.ID != b.ID || len(a.Ops) != len(b.Ops) {
			t.Fatalf("transaction %d changed: %v vs %v", i, a, b)
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				t.Fatalf("op %d/%d changed: %v vs %v", i, j, a.Ops[j], b.Ops[j])
			}
		}
	}
}

func TestDecodeHistoryErrors(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"unknown field", `{"sessions":[],"extra":1}`},
		{"bad kind", `{"sessions":[{"transactions":[{"ops":[{"kind":"scan","obj":"x","val":0}]}]}]}`},
		{"empty object", `{"sessions":[{"transactions":[{"ops":[{"kind":"read","obj":"","val":0}]}]}]}`},
		{"empty transaction", `{"sessions":[{"transactions":[{"ops":[]}]}]}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeHistory(strings.NewReader(tc.in)); err == nil {
				t.Error("decode accepted invalid input")
			}
		})
	}
}

func TestProgramsRoundTrip(t *testing.T) {
	t.Parallel()
	orig := workload.Fig5Programs()
	var buf bytes.Buffer
	if err := EncodePrograms(&buf, orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodePrograms(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back) != len(orig) {
		t.Fatalf("program count %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Name != orig[i].Name || len(back[i].Pieces) != len(orig[i].Pieces) {
			t.Fatalf("program %d changed", i)
		}
		for j := range orig[i].Pieces {
			a, b := orig[i].Pieces[j], back[i].Pieces[j]
			if a.Name != b.Name || len(a.Reads) != len(b.Reads) || len(a.Writes) != len(b.Writes) {
				t.Fatalf("piece %d/%d changed: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestDecodeProgramsErrors(t *testing.T) {
	t.Parallel()
	for _, in := range []string{`{`, `{"programs":[]}`, `{"programs":[{"name":"p","pieces":[]}]}`} {
		if _, err := DecodePrograms(strings.NewReader(in)); err == nil {
			t.Errorf("decode accepted %q", in)
		}
	}
}

func TestAppRoundTrip(t *testing.T) {
	t.Parallel()
	orig := workload.WriteSkewApp()
	var buf bytes.Buffer
	if err := EncodeApp(&buf, orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeApp(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Sessions) != len(orig.Sessions) {
		t.Fatalf("session count changed")
	}
	for i := range orig.Sessions {
		if len(back.Sessions[i].Txs) != len(orig.Sessions[i].Txs) {
			t.Fatalf("session %d changed", i)
		}
		for j := range orig.Sessions[i].Txs {
			a, b := orig.Sessions[i].Txs[j], back.Sessions[i].Txs[j]
			if a.Name != b.Name || len(a.Reads) != len(b.Reads) || len(a.Writes) != len(b.Writes) {
				t.Fatalf("tx %d/%d changed: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestDecodeAppErrors(t *testing.T) {
	t.Parallel()
	for _, in := range []string{`{`, `{"sessions":[]}`, `{"sessions":[{"name":"s","txs":[]}]}`} {
		if _, err := DecodeApp(strings.NewReader(in)); err == nil {
			t.Errorf("decode accepted %q", in)
		}
	}
}

func TestEncodeHistoryValues(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("t", model.Write("x", -7)),
	}})
	var buf bytes.Buffer
	if err := EncodeHistory(&buf, h); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind": "write"`, `"obj": "x"`, `"val": -7`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
