package histio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"sian/internal/model"
	"sian/internal/obs/eventlog"
)

// eventJSON is the wire form of one transactional event: one compact
// JSON object per NDJSON line.
type eventJSON struct {
	Seq     int64       `json:"seq"`
	TS      int64       `json:"ts"`
	Kind    string      `json:"kind"`
	Session string      `json:"session,omitempty"`
	Tx      string      `json:"tx,omitempty"`
	Name    string      `json:"name,omitempty"`
	Obj     string      `json:"obj,omitempty"`
	Val     model.Value `json:"val,omitempty"`
	LSN     uint64      `json:"lsn,omitempty"`
}

// EncodeEvents writes events as NDJSON: one event object per line, in
// slice order.
func EncodeEvents(w io.Writer, events []eventlog.Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(wireEvent(ev)); err != nil {
			return fmt.Errorf("histio: encoding event %d: %w", ev.Seq, err)
		}
	}
	return bw.Flush()
}

// MarshalEvent renders one event as a single compact NDJSON line
// without the trailing newline — the payload format shared by event
// files and the obshttp SSE stream.
func MarshalEvent(ev eventlog.Event) ([]byte, error) {
	return json.Marshal(wireEvent(ev))
}

func wireEvent(ev eventlog.Event) eventJSON {
	return eventJSON{
		Seq: ev.Seq, TS: ev.TS, Kind: ev.Kind.String(),
		Session: ev.Session, Tx: ev.TxID, Name: ev.Name,
		Obj: string(ev.Obj), Val: ev.Val, LSN: ev.LSN,
	}
}

// DecodeEvents reads a complete NDJSON event stream.
func DecodeEvents(r io.Reader) ([]eventlog.Event, error) {
	sc := NewEventScanner(r)
	var out []eventlog.Event
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// EventScanner reads an NDJSON event stream incrementally — the tail-
// reader path of cmd/simon. Next blocks on the underlying reader until
// a full line is available, so scanning a pipe follows the writer
// naturally.
type EventScanner struct {
	br   *bufio.Reader
	line int
	err  error
}

// NewEventScanner returns a scanner over r.
func NewEventScanner(r io.Reader) *EventScanner {
	return &EventScanner{br: bufio.NewReader(r)}
}

// Line returns the 1-based line number of the last event returned by
// Next (the line a subsequent error refers to).
func (s *EventScanner) Line() int { return s.line }

// Next returns the next event. It returns io.EOF at a clean end of
// stream; a truncated final line (data with no trailing newline that
// does not parse) or a malformed line is an error. Blank lines are
// skipped. After any non-EOF error the scanner is poisoned and keeps
// returning that error.
func (s *EventScanner) Next() (eventlog.Event, error) {
	if s.err != nil {
		return eventlog.Event{}, s.err
	}
	for {
		line, err := s.br.ReadString('\n')
		s.line++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			if err != nil {
				s.err = io.EOF
				if err != io.EOF {
					s.err = fmt.Errorf("histio: event line %d: %w", s.line, err)
				}
				return eventlog.Event{}, s.err
			}
			continue // blank line
		}
		ev, perr := parseEventLine(trimmed)
		if perr != nil {
			s.err = fmt.Errorf("histio: event line %d: %w", s.line, perr)
			return eventlog.Event{}, s.err
		}
		if err != nil && err != io.EOF {
			s.err = fmt.Errorf("histio: event line %d: %w", s.line, err)
			return eventlog.Event{}, s.err
		}
		// A final line without trailing newline that parsed cleanly is
		// accepted; the next call reports EOF.
		if err == io.EOF {
			s.err = io.EOF
		}
		return ev, nil
	}
}

// parseEventLine decodes one NDJSON line into an event. Unknown fields
// are rejected, like every other histio decoder.
func parseEventLine(line string) (eventlog.Event, error) {
	var ej eventJSON
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ej); err != nil {
		return eventlog.Event{}, err
	}
	// Trailing garbage after the object would silently vanish with a
	// single Decode; reject it.
	if dec.More() {
		return eventlog.Event{}, fmt.Errorf("trailing data after event object")
	}
	kind, err := eventlog.ParseKind(ej.Kind)
	if err != nil {
		return eventlog.Event{}, err
	}
	if (kind == eventlog.Read || kind == eventlog.Write) && ej.Obj == "" {
		return eventlog.Event{}, fmt.Errorf("%s event with empty object", ej.Kind)
	}
	return eventlog.Event{
		Seq: ej.Seq, TS: ej.TS, Kind: kind,
		Session: ej.Session, TxID: ej.Tx, Name: ej.Name,
		Obj: model.Obj(ej.Obj), Val: ej.Val, LSN: ej.LSN,
	}, nil
}

// LooksLikeHistory sniffs the first bytes of an input to distinguish a
// history JSON document (an object opening with a "sessions" key) from
// an NDJSON event stream. It is a heuristic for CLI auto-detection;
// both formats remain individually decodable regardless of what it
// says.
func LooksLikeHistory(prefix []byte) bool {
	trimmed := bytes.TrimLeft(prefix, " \t\r\n")
	if !bytes.HasPrefix(trimmed, []byte("{")) {
		return false
	}
	rest := bytes.TrimLeft(trimmed[1:], " \t\r\n")
	return bytes.HasPrefix(rest, []byte(`"sessions"`))
}

// HistoryToEvents renders a static history as a synthetic committed-
// only event stream, in dense transaction-index order: begin, the
// transaction's operations, then commit carrying the transaction's id.
// Timestamps are synthetic (base epoch + 1ms per transaction) so
// exporters produce a readable timeline. The commit Name falls back to
// "t<index>" when a transaction has no id, and session ids are
// disambiguated with their index when empty or duplicated, since event
// consumers key sessions by id.
func HistoryToEvents(h *model.History) []eventlog.Event {
	const (
		baseTS = int64(1_700_000_000_000_000_000) // arbitrary fixed epoch, ns
		txStep = int64(1_000_000)                 // 1ms per transaction
		opStep = int64(1_000)                     // 1µs per op inside it
	)
	sessionIDs := make([]string, h.NumSessions())
	seen := make(map[string]bool)
	for si, sess := range h.Sessions() {
		id := sess.ID
		if id == "" {
			id = fmt.Sprintf("s%d", si)
		}
		if seen[id] {
			id = fmt.Sprintf("%s#%d", id, si)
		}
		seen[id] = true
		sessionIDs[si] = id
	}
	var out []eventlog.Event
	seq := int64(0)
	emit := func(ev eventlog.Event) {
		seq++
		ev.Seq = seq
		out = append(out, ev)
	}
	for i := 0; i < h.NumTransactions(); i++ {
		t := h.Transaction(i)
		session := sessionIDs[h.SessionIndex(i)]
		name := t.ID
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		txid := fmt.Sprintf("%s#%d", name, i)
		ts := baseTS + int64(i)*txStep
		emit(eventlog.Event{TS: ts, Kind: eventlog.Begin, Session: session, TxID: txid})
		for oi, op := range t.Ops {
			kind := eventlog.Read
			if op.Kind == model.OpWrite {
				kind = eventlog.Write
			}
			emit(eventlog.Event{
				TS: ts + int64(oi+1)*opStep, Kind: kind,
				Session: session, TxID: txid, Obj: op.Obj, Val: op.Val,
			})
		}
		emit(eventlog.Event{
			TS: ts + int64(len(t.Ops)+1)*opStep, Kind: eventlog.Commit,
			Session: session, TxID: txid, Name: name,
		})
	}
	return out
}
