// Package histio serialises the analyser's inputs — histories,
// chopping programs and robustness application specs — to and from
// JSON, for use by the command-line tools in cmd/.
package histio

import (
	"encoding/json"
	"fmt"
	"io"

	"sian/internal/chopping"
	"sian/internal/model"
	"sian/internal/robustness"
)

// opJSON is the wire form of one operation.
type opJSON struct {
	Kind string      `json:"kind"` // "read" or "write"
	Obj  string      `json:"obj"`
	Val  model.Value `json:"val"`
}

// txJSON is the wire form of one transaction.
type txJSON struct {
	ID  string   `json:"id,omitempty"`
	Ops []opJSON `json:"ops"`
}

// sessionJSON is the wire form of one session.
type sessionJSON struct {
	ID           string   `json:"id,omitempty"`
	Transactions []txJSON `json:"transactions"`
}

// historyJSON is the wire form of a history.
type historyJSON struct {
	Sessions []sessionJSON `json:"sessions"`
}

// EncodeHistory writes a history as JSON.
func EncodeHistory(w io.Writer, h *model.History) error {
	doc := historyJSON{}
	for _, s := range h.Sessions() {
		sj := sessionJSON{ID: s.ID}
		for _, t := range s.Transactions {
			tj := txJSON{ID: t.ID}
			for _, op := range t.Ops {
				tj.Ops = append(tj.Ops, opJSON{Kind: op.Kind.String(), Obj: string(op.Obj), Val: op.Val})
			}
			sj.Transactions = append(sj.Transactions, tj)
		}
		doc.Sessions = append(doc.Sessions, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeHistory reads a history from JSON.
func DecodeHistory(r io.Reader) (*model.History, error) {
	var doc historyJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("histio: decoding history: %w", err)
	}
	sessions := make([]model.Session, 0, len(doc.Sessions))
	for si, sj := range doc.Sessions {
		s := model.Session{ID: sj.ID}
		for ti, tj := range sj.Transactions {
			ops := make([]model.Op, 0, len(tj.Ops))
			for oi, oj := range tj.Ops {
				var kind model.OpKind
				switch oj.Kind {
				case "read":
					kind = model.OpRead
				case "write":
					kind = model.OpWrite
				default:
					return nil, fmt.Errorf("histio: session %d tx %d op %d: unknown kind %q", si, ti, oi, oj.Kind)
				}
				if oj.Obj == "" {
					return nil, fmt.Errorf("histio: session %d tx %d op %d: empty object", si, ti, oi)
				}
				ops = append(ops, model.Op{Kind: kind, Obj: model.Obj(oj.Obj), Val: oj.Val})
			}
			s.Transactions = append(s.Transactions, model.NewTransaction(tj.ID, ops...))
		}
		sessions = append(sessions, s)
	}
	h := model.NewHistory(sessions...)
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("histio: %w", err)
	}
	return h, nil
}

// pieceJSON is the wire form of a chopping piece.
type pieceJSON struct {
	Name   string   `json:"name,omitempty"`
	Reads  []string `json:"reads,omitempty"`
	Writes []string `json:"writes,omitempty"`
}

// programJSON is the wire form of a chopping program.
type programJSON struct {
	Name   string      `json:"name,omitempty"`
	Pieces []pieceJSON `json:"pieces"`
}

// programsJSON is the wire form of a program set.
type programsJSON struct {
	Programs []programJSON `json:"programs"`
}

// EncodePrograms writes a program set as JSON.
func EncodePrograms(w io.Writer, programs []chopping.Program) error {
	doc := programsJSON{}
	for _, p := range programs {
		pj := programJSON{Name: p.Name}
		for _, pc := range p.Pieces {
			pj.Pieces = append(pj.Pieces, pieceJSON{
				Name:   pc.Name,
				Reads:  objsToStrings(pc.Reads),
				Writes: objsToStrings(pc.Writes),
			})
		}
		doc.Programs = append(doc.Programs, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodePrograms reads a program set from JSON.
func DecodePrograms(r io.Reader) ([]chopping.Program, error) {
	var doc programsJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("histio: decoding programs: %w", err)
	}
	if len(doc.Programs) == 0 {
		return nil, fmt.Errorf("histio: no programs in input")
	}
	programs := make([]chopping.Program, 0, len(doc.Programs))
	for pi, pj := range doc.Programs {
		if len(pj.Pieces) == 0 {
			return nil, fmt.Errorf("histio: program %d (%s) has no pieces", pi, pj.Name)
		}
		pieces := make([]chopping.Piece, 0, len(pj.Pieces))
		for _, pcj := range pj.Pieces {
			pieces = append(pieces, chopping.NewPiece(pcj.Name, stringsToObjs(pcj.Reads), stringsToObjs(pcj.Writes)))
		}
		programs = append(programs, chopping.NewProgram(pj.Name, pieces...))
	}
	return programs, nil
}

// txSpecJSON is the wire form of a robustness transaction spec.
type txSpecJSON struct {
	Name   string   `json:"name,omitempty"`
	Reads  []string `json:"reads,omitempty"`
	Writes []string `json:"writes,omitempty"`
}

// appSessionJSON is the wire form of one application session.
type appSessionJSON struct {
	Name string       `json:"name,omitempty"`
	Txs  []txSpecJSON `json:"txs"`
}

// appJSON is the wire form of an application.
type appJSON struct {
	Sessions []appSessionJSON `json:"sessions"`
}

// EncodeApp writes an application spec as JSON.
func EncodeApp(w io.Writer, app robustness.App) error {
	doc := appJSON{}
	for _, s := range app.Sessions {
		sj := appSessionJSON{Name: s.Name}
		for _, t := range s.Txs {
			sj.Txs = append(sj.Txs, txSpecJSON{
				Name:   t.Name,
				Reads:  objsToStrings(t.Reads),
				Writes: objsToStrings(t.Writes),
			})
		}
		doc.Sessions = append(doc.Sessions, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeApp reads an application spec from JSON.
func DecodeApp(r io.Reader) (robustness.App, error) {
	var doc appJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return robustness.App{}, fmt.Errorf("histio: decoding app: %w", err)
	}
	if len(doc.Sessions) == 0 {
		return robustness.App{}, fmt.Errorf("histio: no sessions in input")
	}
	var sessions []robustness.SessionSpec
	for si, sj := range doc.Sessions {
		if len(sj.Txs) == 0 {
			return robustness.App{}, fmt.Errorf("histio: session %d (%s) has no transactions", si, sj.Name)
		}
		s := robustness.SessionSpec{Name: sj.Name}
		for _, tj := range sj.Txs {
			s.Txs = append(s.Txs, robustness.NewTxSpec(tj.Name, stringsToObjs(tj.Reads), stringsToObjs(tj.Writes)))
		}
		sessions = append(sessions, s)
	}
	return robustness.NewApp(sessions...), nil
}

func objsToStrings(xs []model.Obj) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = string(x)
	}
	return out
}

func stringsToObjs(xs []string) []model.Obj {
	out := make([]model.Obj, len(xs))
	for i, x := range xs {
		out[i] = model.Obj(x)
	}
	return out
}
