package histio

import (
	"bytes"
	"strings"
	"testing"

	"sian/internal/workload"
)

// FuzzDecodeHistory checks that arbitrary input never panics the
// decoder and that every successfully decoded history re-encodes and
// decodes to the same shape (round-trip stability).
func FuzzDecodeHistory(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeHistory(&seed, workload.WriteSkew().History); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"sessions":[]}`)
	f.Add(`{"sessions":[{"id":"s","transactions":[{"ops":[{"kind":"read","obj":"x","val":0}]}]}]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		h, err := DecodeHistory(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeHistory(&out, h); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		h2, err := DecodeHistory(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, out.String())
		}
		if h2.NumTransactions() != h.NumTransactions() || h2.NumSessions() != h.NumSessions() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				h2.NumTransactions(), h2.NumSessions(), h.NumTransactions(), h.NumSessions())
		}
	})
}

// FuzzDecodeEvents checks that arbitrary NDJSON input never panics
// the streaming event scanner (the tail-reader path of cmd/simon) and
// that every successfully decoded stream round-trips through
// EncodeEvents. Seeds include truncated and mid-line-cut streams, the
// shapes a tail reader sees while a writer is mid-append.
func FuzzDecodeEvents(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeEvents(&seed, HistoryToEvents(workload.WriteSkew().History)); err != nil {
		f.Fatal(err)
	}
	full := seed.String()
	f.Add(full)
	// Streaming truncations: cut mid-line, cut at a line boundary,
	// lose the final newline.
	f.Add(full[:len(full)/2])
	if i := strings.Index(full, "\n"); i >= 0 {
		f.Add(full[:i+1])
		f.Add(full[:i])
	}
	f.Add(strings.TrimSuffix(full, "\n"))
	f.Add("\n\n\n")
	f.Add(`{"seq":1,"ts":1,"kind":"begin","session":"s","tx":"s#1"}` + "\n")
	f.Add(`{"seq":1,"kind":"write","obj":"x","val":-9223372036854775808}` + "\n")
	f.Add(`{"seq":`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		evs, err := DecodeEvents(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeEvents(&out, evs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		evs2, err := DecodeEvents(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, out.String())
		}
		if len(evs2) != len(evs) {
			t.Fatalf("round trip changed length: %d vs %d", len(evs2), len(evs))
		}
	})
}

// FuzzDecodePrograms checks decoder robustness for program sets.
func FuzzDecodePrograms(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodePrograms(&seed, workload.Fig5Programs()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"programs":[{"pieces":[{"reads":["x"]}]}]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, in string) {
		ps, err := DecodePrograms(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodePrograms(&out, ps); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := DecodePrograms(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzDecodeApp checks decoder robustness for application specs.
func FuzzDecodeApp(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeApp(&seed, workload.WriteSkewApp()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"sessions":[{"txs":[{"writes":["x"]}]}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		app, err := DecodeApp(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeApp(&out, app); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := DecodeApp(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
