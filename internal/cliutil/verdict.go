package cliutil

import (
	"encoding/json"
	"io"
)

// Verdict is the machine-readable outcome of one static check, shared
// by silint, sirobust and sichop so downstream tooling can consume a
// single schema regardless of which tool produced it.
type Verdict struct {
	// Check identifies the analysis, e.g. "robustness-si",
	// "robustness-psi", "chopping-si".
	Check string `json:"check"`
	// Target names what was checked: a package import path, an app
	// file, or a program set.
	Target string `json:"target"`
	// OK reports that the check passed (robust / correct chopping).
	OK bool `json:"ok"`
	// Category classifies a failure, e.g. "write-skew", "long-fork",
	// "incorrect-chopping".
	Category string `json:"category,omitempty"`
	// Theorem cites the paper result behind the check.
	Theorem string `json:"theorem,omitempty"`
	// Witness renders the dangerous or critical cycle on failure.
	Witness string `json:"witness,omitempty"`
	// Pos is a file:line:col source anchor when the tool has one
	// (silint diagnostics).
	Pos string `json:"pos,omitempty"`
	// Tx labels the anchoring transaction when known.
	Tx string `json:"tx,omitempty"`
	// Detail carries the human-readable message.
	Detail string `json:"detail,omitempty"`
}

// VerdictSet is a tool run's complete JSON output.
type VerdictSet struct {
	// Tool is the emitting command name.
	Tool string `json:"tool"`
	// Verdicts lists one entry per executed check.
	Verdicts []Verdict `json:"verdicts"`
	// Exit is the process exit code the run will return
	// (0 all OK, 1 at least one violation, 2 analysis error).
	Exit int `json:"exit"`
}

// WriteVerdicts emits the set as indented JSON followed by a newline.
func WriteVerdicts(w io.Writer, set VerdictSet) error {
	data, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
