package cliutil

import (
	"encoding/json"
	"io"
)

// Verdict is the machine-readable outcome of one static check, shared
// by silint, sirobust and sichop so downstream tooling can consume a
// single schema regardless of which tool produced it.
type Verdict struct {
	// Check identifies the analysis, e.g. "robustness-si",
	// "robustness-psi", "chopping-si".
	Check string `json:"check"`
	// Target names what was checked: a package import path, an app
	// file, or a program set.
	Target string `json:"target"`
	// OK reports that the check passed (robust / correct chopping).
	OK bool `json:"ok"`
	// Category classifies a failure, e.g. "write-skew", "long-fork",
	// "incorrect-chopping".
	Category string `json:"category,omitempty"`
	// Theorem cites the paper result behind the check.
	Theorem string `json:"theorem,omitempty"`
	// Witness renders the dangerous or critical cycle on failure.
	Witness string `json:"witness,omitempty"`
	// Pos is a file:line:col source anchor when the tool has one
	// (silint diagnostics).
	Pos string `json:"pos,omitempty"`
	// Tx labels the anchoring transaction when known.
	Tx string `json:"tx,omitempty"`
	// Detail carries the human-readable message.
	Detail string `json:"detail,omitempty"`
	// Fixes are the repair advisor's verified suggestions when the
	// emitting tool computed any (silint robustness diagnostics):
	// read→write promotions whose application makes the check pass.
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// SuggestedFix is one read→write promotion of a verified repair, in
// the shared schema (mirrors silint.SuggestedFix).
type SuggestedFix struct {
	// Obj is the object whose read is promoted.
	Obj string `json:"obj"`
	// Txs are the labels of the promoted transaction instances.
	Txs []string `json:"txs,omitempty"`
	// Pos is the promoting transaction's call site (file:line:col).
	Pos string `json:"pos,omitempty"`
	// Rank groups the fixes of one repair alternative; apply every fix
	// of a rank together. Rank 1 is the advisor's first choice.
	Rank int `json:"rank"`
	// Message is the human-readable hint.
	Message string `json:"message"`
	// Edits are textual insertions implementing the promotion.
	Edits []TextEdit `json:"edits,omitempty"`
}

// TextEdit is one byte-range replacement in a source file (End ==
// Offset for pure insertions).
type TextEdit struct {
	Filename string `json:"filename"`
	Offset   int    `json:"offset"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// VerdictSet is a tool run's complete JSON output.
type VerdictSet struct {
	// Tool is the emitting command name.
	Tool string `json:"tool"`
	// Verdicts lists one entry per executed check.
	Verdicts []Verdict `json:"verdicts"`
	// Exit is the process exit code the run will return
	// (0 all OK, 1 at least one violation, 2 analysis error).
	Exit int `json:"exit"`
}

// WriteVerdicts emits the set as indented JSON followed by a newline.
func WriteVerdicts(w io.Writer, set VerdictSet) error {
	data, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
