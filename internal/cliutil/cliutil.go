// Package cliutil holds small flag-wiring helpers shared by the sian
// command-line tools, so sicheck, sibench and simon expose identical
// operational flags.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set
)

// PprofFlag registers -pprof on fs and returns a starter to call
// after parsing. When the flag was left empty the starter is a no-op;
// otherwise it begins serving net/http/pprof on the address and
// returns a stop function that closes the listener.
func PprofFlag(fs *flag.FlagSet) func(stderr io.Writer) (stop func(), err error) {
	addr := fs.String("pprof", "", "serve net/http/pprof on this address during the run (e.g. localhost:6060)")
	return func(stderr io.Writer) (func(), error) {
		if *addr == "" {
			return func() {}, nil
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			_ = http.Serve(ln, nil) // shut down by stop closing the listener
		}()
		return func() { ln.Close() }, nil
	}
}
