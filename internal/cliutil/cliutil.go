// Package cliutil holds small flag-wiring helpers shared by the sian
// command-line tools, so every CLI exposes identical operational
// flags: -trace, -metrics, -serve (the live observability plane) and
// -pprof.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set

	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/obshttp"
	"sian/internal/obs/txtrace"
)

// ObsFlags carries the shared observability flag values registered by
// RegisterObsFlags. Call Start after flag parsing to turn them into a
// running Obs.
type ObsFlags struct {
	trace   *bool
	metrics *string
	serve   *string
	pprof   *string
}

// RegisterObsFlags registers the shared observability flags on fs:
//
//	-trace        per-phase timing lines on stderr
//	-metrics      dump the metrics registry on exit
//	-serve        serve the live observability plane (internal/obs/obshttp)
//	-pprof        serve bare net/http/pprof (subsumed by -serve, kept
//	              for scripts that only want profiling)
//
// Every sian CLI registers these through this one helper, so flag
// names, help strings and semantics cannot drift between tools.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	f.trace = fs.Bool("trace", false, "print per-phase timing lines on stderr")
	f.metrics = fs.String("metrics", "", "dump the metrics registry on exit to this file ('-' for stdout, *.json for JSON)")
	f.serve = fs.String("serve", "", "serve the live observability plane on this address during the run (e.g. :8080): /metrics, /metrics.json, /healthz, /events, /verdicts, /timeline, /debug/pprof/")
	f.pprof = fs.String("pprof", "", "serve net/http/pprof on this address during the run (e.g. localhost:6060)")
	return f
}

// Obs is the per-run observability state assembled from the shared
// flags: a registry, an optional tracer, and the optional live plane.
// Finish tears everything down and performs the exit-time dumps.
type Obs struct {
	// Registry is the run's metric registry. SetRegistry may repoint
	// it (sweep drivers build a fresh registry per point).
	Registry *obs.Registry
	// Tracer is non-nil when -trace was set.
	Tracer *obs.Tracer
	// Server is non-nil when -serve was set.
	Server *obshttp.Server

	metrics   string
	stopPprof func()
}

// Start builds the run's observability state: a fresh registry, a
// tracer when -trace was given, the obshttp plane when -serve was
// given (announced on stderr), and bare pprof when -pprof was given.
// name identifies the component in /healthz.
func (f *ObsFlags) Start(name string, stderr io.Writer) (*Obs, error) {
	o := &Obs{Registry: obs.NewRegistry(), metrics: *f.metrics, stopPprof: func() {}}
	if *f.trace {
		o.Tracer = obs.NewTracer(o.Registry)
	}
	if *f.serve != "" {
		o.Server = obshttp.New(obshttp.Config{Name: name, Registry: o.Registry, Tracer: o.Tracer})
		if err := o.Server.Serve(*f.serve); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "obs: serving http://%s/ (/metrics /healthz /events /verdicts /timeline /debug/pprof/)\n", o.Server.Addr())
	}
	if *f.pprof != "" {
		ln, err := net.Listen("tcp", *f.pprof)
		if err != nil {
			if o.Server != nil {
				o.Server.Close()
			}
			return nil, fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			_ = http.Serve(ln, nil) // shut down by Finish closing the listener
		}()
		o.stopPprof = func() { ln.Close() }
	}
	return o, nil
}

// Serving reports whether the live plane is up.
func (o *Obs) Serving() bool { return o != nil && o.Server != nil }

// SetRegistry repoints both the Obs and its live plane at reg, so a
// driver cycling registries (one per sweep point) keeps /metrics and
// the exit-time -metrics dump on the current one.
func (o *Obs) SetRegistry(reg *obs.Registry) {
	if o == nil {
		return
	}
	o.Registry = reg
	if o.Server != nil {
		o.Server.SetRegistry(reg)
	}
}

// SetRecorder attaches the flight recorder to the live plane's
// /events and /timeline endpoints. No-op without -serve.
func (o *Obs) SetRecorder(rec *eventlog.Recorder) {
	if o != nil && o.Server != nil {
		o.Server.SetRecorder(rec)
	}
}

// SetTxTracer attaches the transaction tracer to the live plane's
// /trace/{id} and /slow endpoints. No-op without -serve.
func (o *Obs) SetTxTracer(t *txtrace.Tracer) {
	if o != nil && o.Server != nil {
		o.Server.SetTxTracer(t)
	}
}

// SetHealth registers component-specific /healthz fields on the live
// plane. No-op without -serve.
func (o *Obs) SetHealth(fn func() map[string]any) {
	if o != nil && o.Server != nil {
		o.Server.SetHealth(fn)
	}
}

// Handle mounts an additional handler on the live plane's mux. Call
// between Start and serving traffic. No-op without -serve.
func (o *Obs) Handle(pattern string, h http.Handler) {
	if o != nil && o.Server != nil {
		o.Server.Handle(pattern, h)
	}
}

// PublishVerdict forwards a verdict to the live plane's /verdicts
// stream. No-op without -serve.
func (o *Obs) PublishVerdict(v obshttp.VerdictEvent) {
	if o != nil && o.Server != nil {
		_ = o.Server.PublishVerdict(v)
	}
}

// Finish performs the exit-time observability work — tracer report on
// stderr, -metrics dump of the current registry — and stops the
// servers. It passes through (code, err), replacing them with (2,
// dump error) when the dump itself fails and no earlier error exists,
// so mains can `return o.Finish(code, err, ...)` as their final word.
func (o *Obs) Finish(code int, err error, stdout, stderr io.Writer) (int, error) {
	if o == nil {
		return code, err
	}
	o.Tracer.Report(stderr)
	if o.metrics != "" {
		if derr := o.Registry.Dump(o.metrics, stdout); derr != nil && err == nil {
			code, err = 2, derr
		}
	}
	if o.Server != nil {
		o.Server.Close()
	}
	o.stopPprof()
	return code, err
}
