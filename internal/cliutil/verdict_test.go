package cliutil

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestVerdictSchemaPinned pins the wire-level JSON schema shared by
// silint, sirobust and sichop. Renaming or removing a key here is a
// breaking change for downstream consumers — the test spells out every
// field name so such a change cannot land silently.
func TestVerdictSchemaPinned(t *testing.T) {
	t.Parallel()
	set := VerdictSet{
		Tool: "silint",
		Verdicts: []Verdict{{
			Check:    "robustness-si",
			Target:   "example.com/pkg",
			OK:       false,
			Category: "write-skew",
			Theorem:  "Theorem 19, §6.1",
			Witness:  "w1 -RW*-> w2 -RW*-> w1",
			Pos:      "main.go:10:5",
			Tx:       "w1",
			Detail:   "dangerous cycle",
			Fixes: []SuggestedFix{{
				Obj:     "total",
				Txs:     []string{"w1", "w1@it2"},
				Pos:     "main.go:10:5",
				Rank:    1,
				Message: `promote read of "total" in tx w1, w1@it2`,
				Edits: []TextEdit{{
					Filename: "main.go",
					Offset:   120,
					End:      120,
					NewText:  "\n\tif err := tx.Promote(\"total\"); err != nil {\n\t\treturn err\n\t}",
				}},
			}},
		}},
		Exit: 1,
	}
	var buf bytes.Buffer
	if err := WriteVerdicts(&buf, set); err != nil {
		t.Fatal(err)
	}

	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tool", "verdicts", "exit"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	verdict := raw["verdicts"].([]any)[0].(map[string]any)
	for _, key := range []string{
		"check", "target", "ok", "category", "theorem",
		"witness", "pos", "tx", "detail", "fixes",
	} {
		if _, ok := verdict[key]; !ok {
			t.Errorf("verdict key %q missing", key)
		}
	}
	fix := verdict["fixes"].([]any)[0].(map[string]any)
	for _, key := range []string{"obj", "txs", "pos", "rank", "message", "edits"} {
		if _, ok := fix[key]; !ok {
			t.Errorf("fix key %q missing", key)
		}
	}
	edit := fix["edits"].([]any)[0].(map[string]any)
	for _, key := range []string{"filename", "offset", "end", "new_text"} {
		if _, ok := edit[key]; !ok {
			t.Errorf("edit key %q missing", key)
		}
	}

	// Round trip: the schema decodes to identical values.
	var back VerdictSet
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdicts[0].Fixes[0].Obj != "total" ||
		back.Verdicts[0].Fixes[0].Edits[0].NewText == "" ||
		len(back.Verdicts[0].Fixes[0].Txs) != 2 {
		t.Errorf("round trip lost fix data: %+v", back.Verdicts[0].Fixes[0])
	}

	// Empty optional fields stay off the wire: a passing verdict emits
	// no fixes/category/witness keys.
	buf.Reset()
	if err := WriteVerdicts(&buf, VerdictSet{Tool: "sirobust", Verdicts: []Verdict{{Check: "robustness-si", Target: "app", OK: true}}}); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	verdict = raw["verdicts"].([]any)[0].(map[string]any)
	for _, key := range []string{"fixes", "category", "witness", "pos", "tx", "detail"} {
		if _, present := verdict[key]; present {
			t.Errorf("optional key %q emitted for a passing verdict", key)
		}
	}
}
