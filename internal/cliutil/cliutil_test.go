package cliutil

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"testing"
)

func TestPprofFlagDisabled(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	start := PprofFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	stop, err := start(&stderr)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if stderr.Len() != 0 {
		t.Errorf("disabled pprof wrote %q", stderr.String())
	}
}

func TestPprofFlagServes(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	start := PprofFlag(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	stop, err := start(&stderr)
	if err != nil {
		t.Skipf("listen: %v", err) // sandboxed environments may forbid sockets
	}
	defer stop()
	m := regexp.MustCompile(`http://([^/]+)/debug/pprof/`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no address announced in %q", stderr.String())
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", m[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("GET pprof: status %d, err %v", resp.StatusCode, err)
	}
}
