package cliutil

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func TestObsFlagsDisabled(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	o, err := f.Start("x", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if o.Registry == nil {
		t.Error("Start without flags should still build a registry")
	}
	if o.Tracer != nil || o.Server != nil || o.Serving() {
		t.Errorf("disabled flags built tracer/server: %+v", o)
	}
	if code, err := o.Finish(0, nil, io.Discard, &stderr); code != 0 || err != nil {
		t.Errorf("Finish = (%d, %v), want (0, nil)", code, err)
	}
	if stderr.Len() != 0 {
		t.Errorf("disabled obs wrote %q", stderr.String())
	}
}

func TestObsFlagsFinishPassthrough(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-trace", "-metrics", "-"}); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	o, err := f.Start("x", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil {
		t.Fatal("-trace should build a tracer")
	}
	done := o.Tracer.Phase("work")
	done()
	wantErr := fmt.Errorf("boom")
	if code, err := o.Finish(1, wantErr, &stdout, &stderr); code != 1 || err != wantErr {
		t.Errorf("Finish = (%d, %v), want passthrough (1, boom)", code, err)
	}
	if !strings.Contains(stderr.String(), "phase=work") {
		t.Errorf("tracer report missing from stderr: %q", stderr.String())
	}
	if !strings.Contains(stdout.String(), "phase_duration_ns") {
		t.Errorf("-metrics - dump missing from stdout: %q", stdout.String())
	}
}

func TestObsFlagsServe(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	o, err := f.Start("mytool", &stderr)
	if err != nil {
		t.Skipf("listen: %v", err) // sandboxed environments may forbid sockets
	}
	defer o.Finish(0, nil, io.Discard, io.Discard)
	if !o.Serving() {
		t.Fatal("-serve should start the plane")
	}
	o.Registry.Counter("demo_total").Add(9)
	for _, path := range []string{"/healthz", "/metrics", "/metrics.json", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + o.Server.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, body %q", path, resp.StatusCode, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "demo_total 9") {
			t.Errorf("/metrics missing registry series:\n%s", body)
		}
		if path == "/healthz" && !strings.Contains(string(body), `"name": "mytool"`) {
			t.Errorf("/healthz missing component name:\n%s", body)
		}
	}
}

func TestObsFlagsPprof(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	o, err := f.Start("x", &stderr)
	if err != nil {
		t.Skipf("listen: %v", err) // sandboxed environments may forbid sockets
	}
	defer o.Finish(0, nil, io.Discard, io.Discard)
	m := regexp.MustCompile(`http://([^/]+)/debug/pprof/`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no address announced in %q", stderr.String())
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", m[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("GET pprof: status %d, err %v", resp.StatusCode, err)
	}
}
