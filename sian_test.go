package sian_test

import (
	"bytes"
	"strings"

	"testing"

	"sian"
)

// TestFacadeEndToEnd drives the paper's headline results through the
// public API only: write skew separates SER from SI, the long fork
// separates SI from PSI, the Figure 5/6 choppings are classified, and
// the robustness analyses accept/reject the §6 applications.
func TestFacadeEndToEnd(t *testing.T) {
	t.Parallel()

	// Write skew (Figure 2(d)).
	ws := sian.NewHistory(
		sian.Session{ID: "a", Transactions: []sian.Transaction{
			sian.NewTransaction("T1",
				sian.Read("acct1", 60), sian.Read("acct2", 60), sian.Write("acct1", -40)),
		}},
		sian.Session{ID: "b", Transactions: []sian.Transaction{
			sian.NewTransaction("T2",
				sian.Read("acct1", 60), sian.Read("acct2", 60), sian.Write("acct2", -40)),
		}},
	)
	opts := sian.CertifyOptions{PinInit: true, InitValue: 60, Budget: 100000}
	wantWS := map[sian.Model]bool{sian.SER: false, sian.SI: true, sian.PSI: true}
	for m, want := range wantWS {
		res, err := sian.Certify(ws, m, opts)
		if err != nil {
			t.Fatalf("certify %v: %v", m, err)
		}
		if res.Member != want {
			t.Errorf("write skew under %v = %v, want %v", m, res.Member, want)
		}
	}

	// Theorem 10(i) through the facade.
	res, err := sian.Certify(ws, sian.SI, sian.CertifyOptions{
		PinInit: true, InitValue: 60, Budget: 100000, BuildExecution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Execution == nil {
		t.Fatal("no execution certificate")
	}
	if err := sian.VerifyExecution(res.Graph, res.Execution); err != nil {
		t.Errorf("VerifyExecution: %v", err)
	}
	x, err := sian.BuildExecution(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if err := sian.VerifyExecution(res.Graph, x); err != nil {
		t.Errorf("BuildExecution output: %v", err)
	}

	// Chopping (Figures 5 and 6).
	acct1, acct2 := []sian.Obj{"acct1"}, []sian.Obj{"acct2"}
	transfer := sian.NewProgram("transfer",
		sian.NewPiece("p1", acct1, acct1),
		sian.NewPiece("p2", acct2, acct2),
	)
	lookupAll := sian.NewProgram("lookupAll", sian.NewPiece("all", []sian.Obj{"acct1", "acct2"}, nil))
	v, err := sian.CheckChopping([]sian.Program{transfer, lookupAll}, sian.SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Error("Figure 5 chopping accepted")
	}
	lookup1 := sian.NewProgram("lookup1", sian.NewPiece("l1", acct1, nil))
	lookup2 := sian.NewProgram("lookup2", sian.NewPiece("l2", acct2, nil))
	v, err = sian.CheckChopping([]sian.Program{transfer, lookup1, lookup2}, sian.SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("Figure 6 chopping rejected: %s", v.Describe())
	}

	// Robustness (§6.1).
	both := []sian.Obj{"acct1", "acct2"}
	brokenApp := sian.SingleTxApp(
		sian.NewTxSpec("w1", both, acct1),
		sian.NewTxSpec("w2", both, acct2),
	)
	if _, robust := sian.CheckSIRobust(brokenApp); robust {
		t.Error("write-skew app reported robust")
	}
	if w, robust := sian.CheckPSIRobust(brokenApp); !robust {
		// The broken app has adjacent RWs only; adjacent pairs are not
		// the PSI-dangerous shape.
		t.Errorf("write-skew app should be PSI-robust: %v", w)
	}
}

// TestFacadeEngine drives a small SI engine workload through the
// facade types.
func TestFacadeEngine(t *testing.T) {
	t.Parallel()
	db, err := sian.NewDB(sian.EngineSI, sian.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[sian.Obj]sian.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("client")
	if err := s.Transact(func(tx *sian.EngineTx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		return tx.Write("x", v+1)
	}); err != nil {
		t.Fatal(err)
	}
	h := db.History()
	res, err := sian.Certify(h, sian.SI, sian.CertifyOptions{NoInit: true, PinInit: true, Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Member {
		t.Error("engine history not certified")
	}
}

// TestFacadeWrappers exercises the remaining facade surface: graph
// construction, the extension-model builders, dynamic chopping,
// classification and DOT rendering.
func TestFacadeWrappers(t *testing.T) {
	t.Parallel()
	// Build the lost-update graph by hand through the facade.
	h := sian.NewHistory(
		sian.Session{ID: "init", Transactions: []sian.Transaction{
			sian.NewTransaction("init", sian.Write("acct", 0)),
		}},
		sian.Session{ID: "a", Transactions: []sian.Transaction{
			sian.NewTransaction("T1", sian.Read("acct", 0), sian.Write("acct", 50)),
		}},
		sian.Session{ID: "b", Transactions: []sian.Transaction{
			sian.NewTransaction("T2", sian.Read("acct", 0), sian.Write("acct", 25)),
		}},
	)
	g := sian.NewGraph(h)
	g.AddWR("acct", 0, 1)
	g.AddWR("acct", 0, 2)
	g.AddWW("acct", 0, 1)
	g.AddWW("acct", 0, 2)
	g.AddWW("acct", 1, 2)

	// Classification: lost update is PC-only.
	c := sian.ClassifyGraph(g)
	if c.SER || c.SI || c.PSI {
		t.Errorf("lost update classification = %+v", c)
	}

	// PC construction through the facade.
	x, err := sian.BuildExecutionPC(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sian.VerifyExecutionPC(g, x); err != nil {
		t.Fatal(err)
	}
	if _, err := sian.BuildExecutionGSI(g); err == nil {
		t.Error("lost update should be outside GraphGSI")
	}

	// DOT rendering.
	var buf bytes.Buffer
	if err := sian.WriteGraphDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph dependencies") {
		t.Error("graph DOT missing header")
	}
	buf.Reset()
	if err := sian.WriteExecutionDOT(&buf, x); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph execution") {
		t.Error("execution DOT missing header")
	}

	// Dynamic chopping via the facade on a spliceable SI graph.
	res, err := sian.Certify(h, sian.SI, sian.CertifyOptions{NoInit: true, PinInit: true, Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Fatal("lost update certified SI")
	}
	ws := sian.NewHistory(
		sian.Session{ID: "s", Transactions: []sian.Transaction{
			sian.NewTransaction("T1", sian.Write("x", 1)),
			sian.NewTransaction("T2", sian.Read("x", 1)),
		}},
	)
	wsRes, err := sian.Certify(ws, sian.SI, sian.CertifyOptions{})
	if err != nil || !wsRes.Member {
		t.Fatalf("session history rejected: %v %v", err, wsRes)
	}
	dyn, err := sian.CheckDynamicChopping(wsRes.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Critical != nil {
		t.Errorf("unexpected critical cycle")
	}
	if dyn.Spliced == nil {
		t.Error("expected spliced graph")
	}
	if _, err := sian.Splice(wsRes.Graph); err != nil {
		t.Errorf("Splice: %v", err)
	}

	// GSI round trip on a GSI member.
	gsiRes, err := sian.Certify(ws, sian.GSI, sian.CertifyOptions{})
	if err != nil || !gsiRes.Member {
		t.Fatalf("GSI certify: %v", err)
	}
	gx, err := sian.BuildExecutionGSI(gsiRes.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if err := sian.VerifyExecutionGSI(gsiRes.Graph, gx); err != nil {
		t.Fatal(err)
	}
}
